//! The libpfm user-space API over the perfmon2 kernel interface.
//!
//! Modeled on libpfm 3.2-070725 with the perfmon2 2.6.22-070725 kernel
//! patch (the exact versions of the paper's §3.3). A perfmon *context* is
//! created and loaded onto the calling thread; counters are programmed with
//! `pfm_write_pmcs`/`pfm_write_pmds` and controlled with
//! `pfm_start`/`pfm_stop`; values are sampled with `pfm_read_pmds`. Every
//! one of these is a system call — perfmon has no user-mode read.

use counterlab_cpu::pmu::{CountMode, Event, PmcConfig};
use counterlab_cpu::uarch::Processor;
use counterlab_kernel::config::KernelConfig;
use counterlab_kernel::syscall::lib_syscall;
use counterlab_kernel::system::System;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::costs::{PathCost, PerfmonCosts};
use crate::{PerfmonError, Result};

/// Options for creating a perfmon context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfmonOptions {
    /// Seed for per-call cost jitter.
    pub seed: u64,
}

impl Default for PerfmonOptions {
    fn default() -> Self {
        PerfmonOptions { seed: 0x5DEE_CE66 }
    }
}

/// A loaded per-thread perfmon2 context (libpfm's `pfm_context_t` plus the
/// kernel file descriptor).
///
/// # Examples
///
/// ```
/// use counterlab_perfmon::context::{Perfmon, PerfmonOptions};
/// use counterlab_cpu::prelude::*;
/// use counterlab_kernel::prelude::*;
///
/// # fn main() -> Result<(), counterlab_perfmon::PerfmonError> {
/// let mut pm = Perfmon::boot(
///     Processor::AthlonK8,
///     KernelConfig::default(),
///     PerfmonOptions::default(),
/// )?;
/// pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserOnly)])?;
/// pm.start()?;
/// let c0 = pm.read_pmds()?[0];
/// // ... benchmark would run here ...
/// let c1 = pm.read_pmds()?[0];
/// assert!(c1 >= c0);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct Perfmon {
    sys: System,
    costs: PerfmonCosts,
    rng: StdRng,
    events: Vec<(Event, CountMode)>,
    running: bool,
}

impl Perfmon {
    /// Boots a fresh system with the perfmon2 kernel patch and creates and
    /// loads a context for the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates kernel faults from context creation.
    pub fn boot(
        processor: Processor,
        kernel: KernelConfig,
        options: PerfmonOptions,
    ) -> Result<Self> {
        let sys = System::new(processor, kernel);
        Self::attach(sys, options)
    }

    /// Creates and loads a perfmon context on an existing system.
    ///
    /// # Errors
    ///
    /// Propagates kernel faults from context creation.
    pub fn attach(mut sys: System, options: PerfmonOptions) -> Result<Self> {
        let costs = PerfmonCosts::for_processor(sys.machine().processor());
        sys.set_tick_extension_extra(costs.tick_extra);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let path = jittered(&costs.create_context, &costs, &mut rng);
        lib_syscall(
            &mut sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |_| Ok(()),
        )?;
        Ok(Perfmon {
            sys,
            costs,
            rng,
            events: Vec::new(),
            running: false,
        })
    }

    /// Returns the context to the state a fresh [`Perfmon::boot`] with
    /// the same processor and the given `kernel`/`options` would produce,
    /// reusing the booted system's allocations.
    ///
    /// Replays [`Perfmon::attach`] — tick hook, jittered context-create
    /// syscall — on the reseeded system, so the context is bit-identical
    /// to a fresh boot (the measurement-session reuse path).
    ///
    /// # Errors
    ///
    /// Propagates kernel faults from context creation.
    pub fn reseed(&mut self, kernel: &KernelConfig, options: PerfmonOptions) -> Result<()> {
        self.sys.reseed(kernel);
        self.sys.set_tick_extension_extra(self.costs.tick_extra);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let path = jittered(&self.costs.create_context, &self.costs, &mut rng);
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |_| Ok(()),
        )?;
        self.rng = rng;
        self.events.clear();
        self.running = false;
        Ok(())
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable system access.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Consumes the handle, returning the system.
    pub fn into_system(self) -> System {
        self.sys
    }

    /// The cost model in use.
    pub fn costs(&self) -> &PerfmonCosts {
        &self.costs
    }

    /// Whether counting is started.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Number of programmed counters.
    pub fn counter_count(&self) -> usize {
        self.events.len()
    }

    /// `pfm_write_pmcs` + `pfm_write_pmds`: programs the given events
    /// (counting disabled until [`Perfmon::start`]).
    ///
    /// # Errors
    ///
    /// [`PerfmonError::TooManyCounters`] if the processor lacks registers.
    pub fn write_pmcs(&mut self, events: &[(Event, CountMode)]) -> Result<()> {
        let avail = self.sys.machine().pmu().programmable_count();
        if events.len() > avail {
            return Err(PerfmonError::TooManyCounters {
                requested: events.len(),
                available: avail,
            });
        }
        let path = jittered(&self.costs.program, &self.costs, &mut self.rng);
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for (i, (event, mode)) in events.iter().enumerate() {
                    m.pmu_mut().program(i, PmcConfig::disabled(*event, *mode))?;
                }
                Ok(())
            },
        )?;
        self.events.clear();
        self.events.extend_from_slice(events);
        self.running = false;
        Ok(())
    }

    /// `pfm_start`: begins counting. The measured counter (index 0) is
    /// enabled last; extra counters' enable work lands before the capture
    /// point, and each extra counter slightly *shortens* the post-enable
    /// tail (the paper's start-stop observation).
    ///
    /// # Errors
    ///
    /// [`PerfmonError::NotProgrammed`] without a prior
    /// [`Perfmon::write_pmcs`].
    pub fn start(&mut self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PerfmonError::NotProgrammed);
        }
        let n = self.events.len() as u64;
        let mut path = jittered(&self.costs.start, &self.costs, &mut self.rng);
        path.handler_pre += self.costs.start_per_counter_pre * (n - 1);
        path.handler_post = path
            .handler_post
            .saturating_sub(self.costs.start_per_counter_post_reduction * (n - 1));
        let count = self.events.len();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for i in (0..count).rev() {
                    m.pmu_mut().set_enabled(i, true)?;
                }
                Ok(())
            },
        )?;
        self.running = true;
        Ok(())
    }

    /// `pfm_stop`: stops counting (measured counter disabled first).
    ///
    /// # Errors
    ///
    /// [`PerfmonError::NotProgrammed`] without programming.
    pub fn stop(&mut self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PerfmonError::NotProgrammed);
        }
        let path = jittered(&self.costs.stop, &self.costs, &mut self.rng);
        let count = self.events.len();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for i in 0..count {
                    m.pmu_mut().set_enabled(i, false)?;
                }
                Ok(())
            },
        )?;
        self.running = false;
        Ok(())
    }

    /// `pfm_read_pmds`: samples all programmed counters through the kernel.
    /// The per-PMD loop costs kernel instructions on both sides of the
    /// measured counter's capture — the register-count sensitivity of the
    /// paper's Figure 5.
    ///
    /// # Errors
    ///
    /// [`PerfmonError::NotProgrammed`] without programming.
    pub fn read_pmds(&mut self) -> Result<Vec<u64>> {
        let mut values = Vec::with_capacity(self.events.len());
        self.read_pmds_into(&mut values)?;
        Ok(values)
    }

    /// [`Perfmon::read_pmds`] into a caller-owned buffer (cleared first):
    /// the allocation-free variant for measurement hot loops. The
    /// simulated call path is identical.
    ///
    /// # Errors
    ///
    /// As [`Perfmon::read_pmds`].
    pub fn read_pmds_into(&mut self, out: &mut Vec<u64>) -> Result<()> {
        if self.events.is_empty() {
            return Err(PerfmonError::NotProgrammed);
        }
        let n = self.events.len() as u64;
        let mut path = jittered(&self.costs.read, &self.costs, &mut self.rng);
        path.handler_pre += self.costs.read_per_counter * (n - 1);
        path.handler_post += self.costs.read_per_counter * (n - 1);
        let count = self.events.len();
        out.clear();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for i in 0..count {
                    out.push(m.pmu().read_pmc(i)?);
                }
                Ok(())
            },
        )?;
        Ok(())
    }

    /// Zeroes the PMD values (a `pfm_write_pmds` with zero values).
    ///
    /// # Errors
    ///
    /// [`PerfmonError::NotProgrammed`] without programming.
    pub fn reset(&mut self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PerfmonError::NotProgrammed);
        }
        let path = jittered(&self.costs.reset, &self.costs, &mut self.rng);
        let count = self.events.len();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for i in 0..count {
                    m.pmu_mut().write_pmc(i, 0)?;
                }
                Ok(())
            },
        )?;
        Ok(())
    }
}

/// Applies per-call jitter to a path.
fn jittered(path: &PathCost, costs: &PerfmonCosts, rng: &mut StdRng) -> PathCost {
    let uj = rng.gen_range(0..=costs.user_jitter);
    let kj = rng.gen_range(0..=costs.kernel_jitter);
    PathCost {
        wrapper_pre: path.wrapper_pre + uj / 2,
        handler_pre: path.handler_pre + kj / 2,
        handler_post: path.handler_post + kj - kj / 2,
        wrapper_post: path.wrapper_post + uj - uj / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> KernelConfig {
        KernelConfig::default()
            .with_hz(0)
            .with_skid(counterlab_kernel::config::SkidModel::disabled())
    }

    fn booted(p: Processor) -> Perfmon {
        Perfmon::boot(p, quiet(), PerfmonOptions { seed: 1 }).unwrap()
    }

    #[test]
    fn no_user_rdpmc_under_perfmon() {
        // perfmon never enables CR4.PCE.
        let pm = booted(Processor::Core2Duo);
        assert!(!pm.system().machine().cr4_pce());
    }

    #[test]
    fn every_operation_is_a_syscall() {
        let mut pm = booted(Processor::AthlonK8);
        let base = pm.system().syscall_count();
        pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserOnly)])
            .unwrap();
        pm.start().unwrap();
        let _ = pm.read_pmds().unwrap();
        pm.stop().unwrap();
        pm.reset().unwrap();
        assert_eq!(pm.system().syscall_count(), base + 5);
    }

    #[test]
    fn read_read_user_window_is_37() {
        // Table 3: pm / user / read-read median 37 (min 36). Our user-mode
        // window is stub+wrapper on both sides: deterministic modulo the
        // small jitter.
        let mut pm = booted(Processor::Core2Duo);
        pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserOnly)])
            .unwrap();
        pm.start().unwrap();
        let c0 = pm.read_pmds().unwrap()[0];
        let c1 = pm.read_pmds().unwrap()[0];
        let err = c1 - c0;
        assert!((35..=45).contains(&err), "rr user error = {err}");
    }

    #[test]
    fn read_read_user_kernel_window_is_726ish() {
        let mut pm = booted(Processor::Core2Duo);
        pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
            .unwrap();
        pm.start().unwrap();
        let c0 = pm.read_pmds().unwrap()[0];
        let c1 = pm.read_pmds().unwrap()[0];
        let err = c1 - c0;
        assert!((700..=790).contains(&err), "rr u+k error = {err}");
    }

    #[test]
    fn k8_read_read_user_kernel_573ish() {
        let mut pm = booted(Processor::AthlonK8);
        pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
            .unwrap();
        pm.start().unwrap();
        let c0 = pm.read_pmds().unwrap()[0];
        let c1 = pm.read_pmds().unwrap()[0];
        let err = c1 - c0;
        assert!((550..=640).contains(&err), "K8 rr u+k error = {err}");
    }

    #[test]
    fn extra_registers_add_about_112_each() {
        let run = |n: usize| {
            let mut pm = booted(Processor::AthlonK8);
            let events: Vec<_> = [
                (Event::InstructionsRetired, CountMode::UserAndKernel),
                (Event::CoreCycles, CountMode::UserAndKernel),
                (Event::BranchesRetired, CountMode::UserAndKernel),
                (Event::ICacheMisses, CountMode::UserAndKernel),
            ][..n]
                .to_vec();
            pm.write_pmcs(&events).unwrap();
            pm.start().unwrap();
            let c0 = pm.read_pmds().unwrap()[0];
            let c1 = pm.read_pmds().unwrap()[0];
            c1 - c0
        };
        let one = run(1);
        let four = run(4);
        let growth = four - one;
        // Paper: 573 → 909 on K8 (≈112/register over 3 registers).
        assert!((270..=400).contains(&growth), "growth = {growth}");
    }

    #[test]
    fn user_error_register_independent() {
        // Figure 5 top right: pm user error flat in the register count.
        let run = |n: usize| {
            let mut pm = booted(Processor::AthlonK8);
            let events: Vec<_> = [
                (Event::InstructionsRetired, CountMode::UserOnly),
                (Event::CoreCycles, CountMode::UserOnly),
                (Event::BranchesRetired, CountMode::UserOnly),
                (Event::ICacheMisses, CountMode::UserOnly),
            ][..n]
                .to_vec();
            pm.write_pmcs(&events).unwrap();
            pm.start().unwrap();
            let c0 = pm.read_pmds().unwrap()[0];
            let c1 = pm.read_pmds().unwrap()[0];
            c1 - c0
        };
        let one = run(1);
        let four = run(4);
        assert!(one.abs_diff(four) <= 8, "one={one} four={four}");
    }

    #[test]
    fn start_stop_error_shrinks_with_registers() {
        // §4.1: “when using start-stop, adding a counter can slightly
        // reduce the error” (perfmon, user+kernel).
        let run = |n: usize| {
            let mut pm = booted(Processor::AthlonK8);
            let events: Vec<_> = [
                (Event::InstructionsRetired, CountMode::UserAndKernel),
                (Event::CoreCycles, CountMode::UserAndKernel),
                (Event::BranchesRetired, CountMode::UserAndKernel),
                (Event::ICacheMisses, CountMode::UserAndKernel),
            ][..n]
                .to_vec();
            pm.write_pmcs(&events).unwrap();
            pm.start().unwrap();
            pm.stop().unwrap();
            pm.read_pmds().unwrap()[0]
        };
        let one = run(1);
        let four = run(4);
        assert!(four <= one, "one={one} four={four}");
        assert!(one - four < 60, "reduction should be slight: {one}->{four}");
    }

    #[test]
    fn operations_require_programming() {
        let mut pm = booted(Processor::Core2Duo);
        assert!(matches!(pm.start(), Err(PerfmonError::NotProgrammed)));
        assert!(matches!(pm.stop(), Err(PerfmonError::NotProgrammed)));
        assert!(matches!(pm.read_pmds(), Err(PerfmonError::NotProgrammed)));
        assert!(matches!(pm.reset(), Err(PerfmonError::NotProgrammed)));
    }

    #[test]
    fn too_many_counters_rejected() {
        let mut pm = booted(Processor::Core2Duo);
        let events: Vec<_> = (0..3)
            .map(|_| (Event::InstructionsRetired, CountMode::UserOnly))
            .collect();
        assert!(matches!(
            pm.write_pmcs(&events),
            Err(PerfmonError::TooManyCounters {
                requested: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn benchmark_instructions_counted_exactly() {
        use counterlab_cpu::mix::InstMix;
        let mut pm = booted(Processor::AthlonK8);
        pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserOnly)])
            .unwrap();
        pm.start().unwrap();
        let c0 = pm.read_pmds().unwrap()[0];
        pm.system_mut()
            .run_user_mix(&InstMix::straight_line(50_000));
        let c1 = pm.read_pmds().unwrap()[0];
        let measured = c1 - c0;
        assert!(measured >= 50_000);
        assert!(measured < 50_100, "measured = {measured}");
    }

    #[test]
    fn reseed_matches_fresh_boot() {
        let lifecycle = |pm: &mut Perfmon| {
            pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
                .unwrap();
            pm.start().unwrap();
            let c0 = pm.read_pmds().unwrap();
            let c1 = pm.read_pmds().unwrap();
            (c0, c1, pm.system().machine().cycle())
        };
        for seed in [3u64, 0xFEED] {
            let options = PerfmonOptions { seed };
            let mut fresh =
                Perfmon::boot(Processor::Core2Duo, KernelConfig::default(), options).unwrap();
            let expected = lifecycle(&mut fresh);

            let mut reused = Perfmon::boot(
                Processor::Core2Duo,
                KernelConfig::default().with_seed(9),
                PerfmonOptions { seed: seed ^ 0xCD },
            )
            .unwrap();
            let _ = lifecycle(&mut reused);
            reused.reseed(&KernelConfig::default(), options).unwrap();
            assert!(!reused.is_running());
            assert_eq!(reused.counter_count(), 0);
            assert_eq!(lifecycle(&mut reused), expected, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut pm = booted(Processor::Core2Duo);
            pm.write_pmcs(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
                .unwrap();
            pm.start().unwrap();
            let c0 = pm.read_pmds().unwrap()[0];
            let c1 = pm.read_pmds().unwrap()[0];
            c1 - c0
        };
        assert_eq!(run(), run());
    }
}
