//! Calibrated instruction costs of the perfmon2 call paths.
//!
//! perfmon2 (Eranian's kernel interface, used through libpfm 3.2) has no
//! user-mode read path: every operation — `pfm_start`, `pfm_stop`,
//! `pfm_read_pmds` — is a system call. Its user-mode window contributions
//! are therefore tiny (just the libc stub and a thin libpfm wrapper), which
//! is why perfmon wins the paper's user-mode comparison (Table 3: median
//! 37 instructions) while losing the user+kernel one (726).
//!
//! Base constants target the Core 2 Duo; platform factors scale the kernel
//! paths (K8's read-read median of 573 for one register — Figure 5 —
//! implies a ≈0.78 factor relative to CD's 726).

use counterlab_cpu::uarch::Processor;

pub use counterlab_kernel::syscall::PathCost;

/// The complete perfmon2 cost model for one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfmonCosts {
    /// `pfm_create_context` + `pfm_load_context` (outside any window).
    pub create_context: PathCost,
    /// `pfm_write_pmcs` + `pfm_write_pmds`: programming the counters.
    pub program: PathCost,
    /// `pfm_start`: capture = enabling the measured counter.
    pub start: PathCost,
    /// `pfm_stop`: capture = disabling the measured counter.
    pub stop: PathCost,
    /// `pfm_read_pmds`: capture = sampling the measured counter mid-loop.
    pub read: PathCost,
    /// Zeroing the PMDs via `pfm_write_pmds`.
    pub reset: PathCost,
    /// Kernel instructions the PMD loop spends per *additional* counter on
    /// each side of a read's capture (the paper's ≈112 instructions of
    /// extra read-read error per extra register, split 56/56).
    pub read_per_counter: u64,
    /// Extra kernel instructions per additional counter before the
    /// measured counter's enable on `pfm_start` (not counted — the counter
    /// is still off) …
    pub start_per_counter_pre: u64,
    /// … and the (small) *reduction* of the post-enable tail per extra
    /// counter: with more counters the measured one is enabled later, so
    /// less of the handler remains. This models the paper's observation
    /// that “when using start-stop, adding a counter can slightly reduce
    /// the error”.
    pub start_per_counter_post_reduction: u64,
    /// Kernel instructions perfmon's timer-tick hook adds per tick.
    pub tick_extra: u64,
    /// Upper bound of per-call user-mode jitter.
    pub user_jitter: u64,
    /// Upper bound of per-call kernel-mode jitter.
    pub kernel_jitter: u64,
}

/// Core 2 Duo base cost model.
const BASE: PerfmonCosts = PerfmonCosts {
    create_context: PathCost {
        wrapper_pre: 80,
        handler_pre: 350,
        handler_post: 250,
        wrapper_post: 60,
    },
    program: PathCost {
        wrapper_pre: 60,
        handler_pre: 120,
        handler_post: 80,
        wrapper_post: 30,
    },
    start: PathCost {
        wrapper_pre: 10,
        handler_pre: 150,
        handler_post: 183,
        wrapper_post: 10,
    },
    stop: PathCost {
        wrapper_pre: 10,
        handler_pre: 300,
        handler_post: 150,
        wrapper_post: 10,
    },
    read: PathCost {
        wrapper_pre: 7,
        handler_pre: 270,
        handler_post: 264,
        wrapper_post: 10,
    },
    reset: PathCost {
        wrapper_pre: 12,
        handler_pre: 110,
        handler_post: 90,
        wrapper_post: 10,
    },
    read_per_counter: 56,
    start_per_counter_pre: 25,
    start_per_counter_post_reduction: 6,
    tick_extra: 500,
    user_jitter: 4,
    kernel_jitter: 30,
};

impl PerfmonCosts {
    /// The cost model for a processor. Only the kernel paths scale — the
    /// user-mode stubs are the same code everywhere, which is why Table 3's
    /// pm user medians are nearly platform-independent (37 vs min 36).
    pub fn for_processor(processor: Processor) -> Self {
        let kernel_pct = match processor {
            Processor::PentiumD => 135,
            Processor::Core2Duo => 100,
            Processor::AthlonK8 => 71,
        };
        let mut c = BASE;
        c.create_context = c.create_context.scale_kernel(kernel_pct);
        c.program = c.program.scale_kernel(kernel_pct);
        c.start = c.start.scale_kernel(kernel_pct);
        c.stop = c.stop.scale_kernel(kernel_pct);
        c.read = c.read.scale_kernel(kernel_pct);
        c.reset = c.reset.scale_kernel(kernel_pct);
        c
    }

    /// The user+kernel read-read window for `n` counters, before syscall
    /// stub costs (used in tests and docs).
    pub fn rr_kernel_window(&self, n: u64) -> u64 {
        self.read.handler_pre + self.read.handler_post + 2 * self.read_per_counter * (n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cd_read_read_window_is_726ish() {
        // rr = read.post (u 18, k 334) + read.pre (u 19, k 355) = 726 with
        // the default syscall convention (stub 12/8, kernel 85/70).
        let c = PerfmonCosts::for_processor(Processor::Core2Duo);
        let user = (c.read.wrapper_pre + 12) + (8 + c.read.wrapper_post);
        let kernel = (85 + c.read.handler_pre) + (c.read.handler_post + 70);
        assert_eq!(user, 37);
        assert_eq!(user + kernel, 726);
    }

    #[test]
    fn k8_read_read_window_is_573ish() {
        let c = PerfmonCosts::for_processor(Processor::AthlonK8);
        let user = (c.read.wrapper_pre + 12) + (8 + c.read.wrapper_post);
        let kernel = (85 + c.read.handler_pre) + (c.read.handler_post + 70);
        let total = user + kernel;
        assert!((545..=600).contains(&total), "K8 rr = {total}");
    }

    #[test]
    fn extra_registers_add_112_per_read_read() {
        let c = PerfmonCosts::for_processor(Processor::Core2Duo);
        let w1 = c.rr_kernel_window(1);
        let w4 = c.rr_kernel_window(4);
        assert_eq!(w4 - w1, 3 * 112);
    }

    #[test]
    fn start_read_beats_read_read_for_user_kernel() {
        // ar = start.post + read.pre < rr = read.post + read.pre on CD.
        let c = PerfmonCosts::for_processor(Processor::Core2Duo);
        let start_post = c.start.handler_post + 70 + 8 + c.start.wrapper_post;
        let read_post = c.read.handler_post + 70 + 8 + c.read.wrapper_post;
        assert!(start_post < read_post);
    }

    #[test]
    fn user_paths_platform_independent() {
        let cd = PerfmonCosts::for_processor(Processor::Core2Duo);
        let k8 = PerfmonCosts::for_processor(Processor::AthlonK8);
        assert_eq!(cd.read.wrapper_pre, k8.read.wrapper_pre);
        assert_eq!(cd.start.wrapper_post, k8.start.wrapper_post);
        assert_ne!(cd.read.handler_pre, k8.read.handler_pre);
    }

    #[test]
    fn tick_hook_cheaper_than_perfctr() {
        // perfmon's per-tick work is light; perfctr's virtualization is
        // heavier (4000). This asymmetry feeds Figure 7's per-infrastructure
        // slope differences.
        let c = PerfmonCosts::for_processor(Processor::Core2Duo);
        assert!(c.tick_extra < 1_000);
    }
}
