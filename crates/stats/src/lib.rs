//! # counterlab-stats
//!
//! Statistics substrate for the `counterlab` workspace: everything the paper
//! *“Accuracy of Performance Counter Measurements”* (Zaparanuks, Jovic,
//! Hauswirth; ISPASS 2009) needs to summarize and analyze its measurement
//! data, implemented from scratch with no external dependencies.
//!
//! The paper uses:
//!
//! * **box plots** (five-number summaries with Tukey whiskers and outliers) —
//!   [`boxplot::BoxPlot`];
//! * **violin plots** (box plot + kernel density estimate) — [`kde::Kde`]
//!   and [`violin::Violin`];
//! * **medians / quartiles / minima** for tables like Table 3 —
//!   [`quantile`] and [`descriptive`];
//! * **ordinary-least-squares regression lines** through `(loop size, error)`
//!   points for Figures 7–9 — [`regression::LinearFit`];
//! * **n-way analysis of variance** (§4.3) to decide which experimental
//!   factors significantly affect the error — [`anova::Anova`], built on the
//!   F distribution in [`dist`] and the special functions in [`special`].
//!
//! # Examples
//!
//! ```
//! use counterlab_stats::prelude::*;
//!
//! let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
//! let bp = BoxPlot::from_slice(&xs).unwrap();
//! assert_eq!(bp.median(), 3.0);
//! assert_eq!(bp.outliers(), &[100.0]);
//!
//! let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
//! assert!((fit.slope() - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anova;
pub mod bootstrap;
pub mod boxplot;
pub mod descriptive;
pub mod dist;
pub mod histogram;
pub mod kde;
pub mod quantile;
pub mod regression;
pub mod special;
pub mod stream;
pub mod violin;

mod error;

pub use error::StatsError;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::anova::{Anova, AnovaTable, Factor};
    pub use crate::bootstrap::{bootstrap_ci, median_ci, ConfidenceInterval};
    pub use crate::boxplot::BoxPlot;
    pub use crate::descriptive::Summary;
    pub use crate::dist::{FDistribution, NormalDistribution};
    pub use crate::histogram::Histogram;
    pub use crate::kde::Kde;
    pub use crate::quantile::{median, quantile};
    pub use crate::regression::LinearFit;
    pub use crate::stream::{
        Covariance, P2Quantile, StreamingHistogram, SummaryAccumulator, Welford,
    };
    pub use crate::violin::Violin;
    pub use crate::StatsError;
}

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
