//! Tukey box-plot summaries.
//!
//! Figures 4, 5, 6 and 9 of the paper are matrices of box plots of
//! measurement errors. A [`BoxPlot`] captures exactly what those figures
//! draw: the quartile box, the median line, whiskers extended to the most
//! extreme data point within 1.5·IQR of the box, and individual outliers
//! beyond the whiskers.

use crate::error::check_sample;
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::Result;

/// The whisker multiplier used by Tukey's original definition (and by R's
/// `boxplot` with default `range = 1.5`).
pub const TUKEY_WHISKER_FACTOR: f64 = 1.5;

/// A five-number box-plot summary with outliers.
///
/// # Examples
///
/// ```
/// use counterlab_stats::boxplot::BoxPlot;
///
/// let bp = BoxPlot::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 100.0]).unwrap();
/// assert_eq!(bp.outliers(), &[100.0]);
/// assert!(bp.upper_whisker() <= 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoxPlot {
    n: usize,
    q1: f64,
    median: f64,
    q3: f64,
    lower_whisker: f64,
    upper_whisker: f64,
    outliers: Vec<f64>,
    mean: f64,
}

impl BoxPlot {
    /// Builds a box plot from raw data using the Tukey 1.5·IQR whisker rule.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::EmptyInput`] or
    /// [`crate::StatsError::NonFinite`] for unusable samples.
    pub fn from_slice(xs: &[f64]) -> Result<Self> {
        Self::with_whisker_factor(xs, TUKEY_WHISKER_FACTOR)
    }

    /// Builds a box plot with a custom whisker factor (R's `range`
    /// parameter). A factor of `0.0` extends whiskers to the data extremes
    /// and classifies nothing as an outlier.
    ///
    /// # Errors
    ///
    /// As [`BoxPlot::from_slice`].
    pub fn with_whisker_factor(xs: &[f64], factor: f64) -> Result<Self> {
        check_sample(xs)?;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
        let q1 = quantile_sorted(&sorted, 0.25, QuantileMethod::Linear)?;
        let median = quantile_sorted(&sorted, 0.5, QuantileMethod::Linear)?;
        let q3 = quantile_sorted(&sorted, 0.75, QuantileMethod::Linear)?;
        let iqr = q3 - q1;
        let (lo_fence, hi_fence) = if factor > 0.0 {
            (q1 - factor * iqr, q3 + factor * iqr)
        } else {
            (f64::NEG_INFINITY, f64::INFINITY)
        };
        // Whiskers snap to the most extreme observation inside the fence.
        // When every observation on one side of the box is an outlier, the
        // surviving extreme can land inside the box; clamp to the box edge
        // so the five numbers stay ordered (the drawing convention).
        let lower_whisker = sorted
            .iter()
            .cloned()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0])
            .min(q1);
        let upper_whisker = sorted
            .iter()
            .rev()
            .cloned()
            .find(|&x| x <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1])
            .max(q3);
        let outliers: Vec<f64> = sorted
            .iter()
            .cloned()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Ok(BoxPlot {
            n: xs.len(),
            q1,
            median,
            q3,
            lower_whisker,
            upper_whisker,
            outliers,
            mean,
        })
    }

    /// Number of observations summarized.
    pub fn n(&self) -> usize {
        self.n
    }

    /// First quartile (bottom of the box).
    pub fn q1(&self) -> f64 {
        self.q1
    }

    /// Median (line inside the box).
    pub fn median(&self) -> f64 {
        self.median
    }

    /// Third quartile (top of the box).
    pub fn q3(&self) -> f64 {
        self.q3
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Lowest data point within the lower fence.
    pub fn lower_whisker(&self) -> f64 {
        self.lower_whisker
    }

    /// Highest data point within the upper fence.
    pub fn upper_whisker(&self) -> f64 {
        self.upper_whisker
    }

    /// Data points beyond the fences, in ascending order (the dots in the
    /// paper's figures).
    pub fn outliers(&self) -> &[f64] {
        &self.outliers
    }

    /// Sample mean — drawn as the small square in Figure 9.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl std::fmt::Display for BoxPlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.2} |{:.2} {:.2} {:.2}| {:.2}] ({} outliers, n={})",
            self.lower_whisker,
            self.q1,
            self.median,
            self.q3,
            self.upper_whisker,
            self.outliers.len(),
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_outliers_for_tight_data() {
        let bp = BoxPlot::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(bp.outliers().is_empty());
        assert_eq!(bp.lower_whisker(), 1.0);
        assert_eq!(bp.upper_whisker(), 5.0);
        assert_eq!(bp.median(), 3.0);
    }

    #[test]
    fn detects_single_outlier() {
        let bp = BoxPlot::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 1000.0]).unwrap();
        assert_eq!(bp.outliers(), &[1000.0]);
        assert!(bp.upper_whisker() <= 5.0);
    }

    #[test]
    fn detects_low_outlier() {
        let bp = BoxPlot::from_slice(&[-1000.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(bp.outliers(), &[-1000.0]);
        assert_eq!(bp.lower_whisker(), 1.0);
    }

    #[test]
    fn zero_factor_means_no_outliers() {
        let bp = BoxPlot::with_whisker_factor(&[1.0, 2.0, 1000.0], 0.0).unwrap();
        assert!(bp.outliers().is_empty());
        assert_eq!(bp.upper_whisker(), 1000.0);
    }

    #[test]
    fn singleton_sample() {
        let bp = BoxPlot::from_slice(&[7.0]).unwrap();
        assert_eq!(bp.median(), 7.0);
        assert_eq!(bp.q1(), 7.0);
        assert_eq!(bp.q3(), 7.0);
        assert_eq!(bp.iqr(), 0.0);
        assert!(bp.outliers().is_empty());
    }

    #[test]
    fn constant_sample_has_zero_iqr_and_no_outliers() {
        let bp = BoxPlot::from_slice(&[3.0; 100]).unwrap();
        assert_eq!(bp.iqr(), 0.0);
        assert!(bp.outliers().is_empty());
        assert_eq!(bp.mean(), 3.0);
    }

    #[test]
    fn whiskers_are_actual_data_points() {
        // Whiskers must snap to observations, not to the fences themselves.
        let xs = [0.0, 10.0, 20.0, 30.0, 40.0, 100.0];
        let bp = BoxPlot::from_slice(&xs).unwrap();
        assert!(xs.contains(&bp.lower_whisker()));
        assert!(xs.contains(&bp.upper_whisker()));
    }

    #[test]
    fn mean_tracked_for_figure9_squares() {
        let bp = BoxPlot::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(bp.mean(), 2.0);
    }

    #[test]
    fn display_shows_counts() {
        let bp = BoxPlot::from_slice(&[1.0, 2.0, 3.0, 4.0, 1000.0]).unwrap();
        let s = bp.to_string();
        assert!(s.contains("n=5"), "{s}");
        assert!(s.contains("1 outliers"), "{s}");
    }
}
