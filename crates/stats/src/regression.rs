//! Ordinary least squares simple linear regression.
//!
//! Section 5 of the paper determines how the measurement error grows with
//! benchmark duration by fitting a regression line through `(loop
//! iterations, error)` points and reporting its slope (Figures 7 and 8), and
//! cross-checks a slope of 0.00204 kernel instructions per iteration for
//! Figure 9. [`LinearFit`] provides those slopes plus the usual inference
//! statistics.

use crate::dist::TDistribution;
use crate::{Result, StatsError};

/// Result of fitting `y = intercept + slope * x` by ordinary least squares.
///
/// # Examples
///
/// ```
/// use counterlab_stats::regression::LinearFit;
///
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let fit = LinearFit::fit(&x, &y).unwrap();
/// assert!((fit.slope() - 2.0).abs() < 1e-12);
/// assert!((fit.intercept() - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    slope: f64,
    intercept: f64,
    r_squared: f64,
    n: usize,
    residual_std: f64,
    slope_std_err: f64,
}

impl LinearFit {
    /// Fits a line through the points `(x[i], y[i])`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::LengthMismatch`] if `x` and `y` differ in length;
    /// * [`StatsError::EmptyInput`] / [`StatsError::NonFinite`] for unusable
    ///   samples;
    /// * [`StatsError::InvalidParameter`] if fewer than two points are given;
    /// * [`StatsError::Degenerate`] if all `x` are identical (vertical line).
    pub fn fit(x: &[f64], y: &[f64]) -> Result<Self> {
        if x.len() != y.len() {
            return Err(StatsError::LengthMismatch {
                left: x.len(),
                right: y.len(),
            });
        }
        crate::error::check_sample(x)?;
        crate::error::check_sample(y)?;
        if x.len() < 2 {
            return Err(StatsError::InvalidParameter(
                "regression requires at least two points",
            ));
        }
        let n = x.len() as f64;
        let mean_x = x.iter().sum::<f64>() / n;
        let mean_y = y.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&xi, &yi) in x.iter().zip(y) {
            let dx = xi - mean_x;
            let dy = yi - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return Err(StatsError::Degenerate("all x values are identical"));
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        // Residual sum of squares; guard against tiny negative values from
        // floating point cancellation.
        let ss_res = (syy - slope * sxy).max(0.0);
        let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
        let dof = (x.len() as f64 - 2.0).max(1.0);
        let residual_var = ss_res / dof;
        let residual_std = residual_var.sqrt();
        let slope_std_err = (residual_var / sxx).sqrt();
        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
            n: x.len(),
            residual_std,
            slope_std_err,
        })
    }

    /// Estimated slope — for Figure 7 this is the number of extra
    /// instructions per loop iteration.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Estimated intercept — for Figure 7 this absorbs the fixed access
    /// cost studied in §4.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of points fitted.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Residual standard deviation (root mean squared error with `n - 2`
    /// denominator).
    pub fn residual_std(&self) -> f64 {
        self.residual_std
    }

    /// Standard error of the slope estimate.
    pub fn slope_std_err(&self) -> f64 {
        self.slope_std_err
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Two-sided p-value for the null hypothesis `slope == 0`.
    ///
    /// # Errors
    ///
    /// Returns an error only when the fit has fewer than three points (no
    /// residual degrees of freedom).
    pub fn slope_p_value(&self) -> Result<f64> {
        if self.n < 3 {
            return Err(StatsError::InvalidParameter(
                "slope test requires at least three points",
            ));
        }
        if self.slope_std_err == 0.0 {
            // Perfect fit: the slope is exactly determined.
            return Ok(if self.slope == 0.0 { 1.0 } else { 0.0 });
        }
        let t = self.slope / self.slope_std_err;
        TDistribution::new(self.n as f64 - 2.0)?.two_sided_p(t)
    }
}

impl std::fmt::Display for LinearFit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "y = {:.6} + {:.6}·x (R²={:.4}, n={})",
            self.intercept, self.slope, self.r_squared, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope() - 3.0).abs() < 1e-12);
        assert!((fit.intercept() + 1.0).abs() < 1e-12);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
        assert!(fit.residual_std() < 1e-9);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        // Deterministic "noise" alternating ±0.5 around y = 2x.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope() - 2.0).abs() < 1e-3);
        assert!(fit.r_squared() > 0.999);
    }

    #[test]
    fn flat_data_zero_slope() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [5.0, 5.0, 5.0, 5.0];
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert_eq!(fit.slope(), 0.0);
        assert_eq!(fit.intercept(), 5.0);
        // syy == 0 → define R² = 1 (line explains everything trivially).
        assert_eq!(fit.r_squared(), 1.0);
    }

    #[test]
    fn vertical_data_rejected() {
        let x = [2.0, 2.0, 2.0];
        let y = [1.0, 2.0, 3.0];
        assert!(matches!(
            LinearFit::fit(&x, &y),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            LinearFit::fit(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn predict_interpolates() {
        let fit = LinearFit::fit(&[0.0, 10.0], &[0.0, 100.0]).unwrap();
        assert!((fit.predict(5.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn significant_slope_p_value() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 0.002 * v + if i % 2 == 0 { 1e-4 } else { -1e-4 })
            .collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!(fit.slope_p_value().unwrap() < 1e-10);
    }

    #[test]
    fn insignificant_slope_p_value() {
        // Pure alternating noise, no trend.
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!(fit.slope_p_value().unwrap() > 0.2);
    }

    #[test]
    fn display_format() {
        let fit = LinearFit::fit(&[0.0, 1.0], &[0.0, 2.0]).unwrap();
        assert!(fit.to_string().contains("R²"));
    }
}
