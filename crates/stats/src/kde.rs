//! Gaussian kernel density estimation.
//!
//! Figure 1 of the paper is a pair of *violin plots* — box plots overlaid
//! with a kernel density trace (Hintze & Nelson 1998). [`Kde`] provides the
//! density trace; [`crate::violin::Violin`] combines it with a
//! [`crate::boxplot::BoxPlot`].

use crate::error::check_sample;
use crate::{Result, StatsError};

/// A Gaussian kernel density estimate over a sample.
///
/// # Examples
///
/// ```
/// use counterlab_stats::kde::Kde;
///
/// let data = [0.0, 0.1, -0.1, 0.05, 5.0, 5.1, 4.9];
/// let kde = Kde::from_slice(&data).unwrap();
/// // Density near the clusters beats density in the gap.
/// assert!(kde.density(0.0) > kde.density(2.5));
/// assert!(kde.density(5.0) > kde.density(2.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE using Silverman's rule-of-thumb bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::EmptyInput`] / [`StatsError::NonFinite`]
    /// for unusable samples.
    pub fn from_slice(xs: &[f64]) -> Result<Self> {
        let bw = silverman_bandwidth(xs)?;
        Self::with_bandwidth(xs, bw)
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Errors
    ///
    /// As [`Kde::from_slice`], plus [`StatsError::InvalidParameter`] when the
    /// bandwidth is not strictly positive.
    pub fn with_bandwidth(xs: &[f64], bandwidth: f64) -> Result<Self> {
        check_sample(xs)?;
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(StatsError::InvalidParameter("bandwidth must be > 0"));
        }
        Ok(Kde {
            data: xs.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of observations behind the estimate.
    pub fn n(&self) -> usize {
        self.data.len()
    }

    /// Estimated density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.data.len() as f64);
        self.data
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on `points` evenly spaced positions spanning
    /// `[min - 3h, max + 3h]` — the trace a violin plot draws.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `points < 2`.
    pub fn trace(&self, points: usize) -> Result<Vec<(f64, f64)>> {
        if points < 2 {
            return Err(StatsError::InvalidParameter("trace requires >= 2 points"));
        }
        let lo = self.data.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi = self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 3.0 * self.bandwidth;
        let step = (hi - lo) / (points - 1) as f64;
        Ok((0..points)
            .map(|i| {
                let x = lo + i as f64 * step;
                (x, self.density(x))
            })
            .collect())
    }
}

/// Silverman's rule-of-thumb bandwidth:
/// `0.9 · min(sd, IQR/1.34) · n^(-1/5)`, with fallbacks for degenerate
/// spreads so constant samples still get a usable (tiny) bandwidth.
///
/// # Errors
///
/// Returns [`crate::StatsError::EmptyInput`] / [`StatsError::NonFinite`] for
/// unusable samples.
pub fn silverman_bandwidth(xs: &[f64]) -> Result<f64> {
    check_sample(xs)?;
    let n = xs.len() as f64;
    let sd = if xs.len() >= 2 {
        crate::descriptive::std_dev(xs)?
    } else {
        0.0
    };
    let summary = crate::descriptive::Summary::from_slice(xs)?;
    let iqr = summary.iqr();
    let mut spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    if spread <= 0.0 {
        spread = sd.max(iqr / 1.34);
    }
    if spread <= 0.0 {
        // Constant sample: any positive bandwidth gives a spike at the value.
        spread = summary.mean().abs().max(1.0) * 1e-3;
    }
    Ok(0.9 * spread * n.powf(-0.2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let data = [1.0, 2.0, 2.5, 3.0, 10.0];
        let kde = Kde::from_slice(&data).unwrap();
        // Trapezoidal integration over a wide range.
        let lo = -20.0;
        let hi = 40.0;
        let steps = 4000;
        let dx = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            let x0 = lo + i as f64 * dx;
            integral += 0.5 * (kde.density(x0) + kde.density(x0 + dx)) * dx;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn density_peaks_at_data() {
        let kde = Kde::with_bandwidth(&[0.0], 1.0).unwrap();
        assert!(kde.density(0.0) > kde.density(1.0));
        assert!(kde.density(1.0) > kde.density(3.0));
        // Standard normal kernel peak value.
        assert!((kde.density(0.0) - 1.0 / (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bimodal_data_bimodal_density() {
        let mut data = Vec::new();
        for i in 0..50 {
            data.push(i as f64 * 0.01); // cluster near 0
            data.push(10.0 + i as f64 * 0.01); // cluster near 10
        }
        let kde = Kde::from_slice(&data).unwrap();
        let mid = kde.density(5.0);
        assert!(kde.density(0.25) > 5.0 * mid);
        assert!(kde.density(10.25) > 5.0 * mid);
    }

    #[test]
    fn trace_spans_data() {
        let kde = Kde::from_slice(&[0.0, 1.0, 2.0]).unwrap();
        let trace = kde.trace(64).unwrap();
        assert_eq!(trace.len(), 64);
        assert!(trace.first().unwrap().0 < 0.0);
        assert!(trace.last().unwrap().0 > 2.0);
        // Densities are non-negative everywhere.
        assert!(trace.iter().all(|&(_, d)| d >= 0.0));
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        assert!(Kde::with_bandwidth(&[1.0], 0.0).is_err());
        assert!(Kde::with_bandwidth(&[1.0], -1.0).is_err());
        assert!(Kde::with_bandwidth(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn trace_needs_two_points() {
        let kde = Kde::from_slice(&[1.0, 2.0]).unwrap();
        assert!(kde.trace(1).is_err());
    }

    #[test]
    fn silverman_shrinks_with_n() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..10_000).map(|i| (i % 10) as f64).collect();
        let bw_small = silverman_bandwidth(&small).unwrap();
        let bw_large = silverman_bandwidth(&large).unwrap();
        assert!(bw_large < bw_small);
    }

    #[test]
    fn constant_sample_gets_positive_bandwidth() {
        let bw = silverman_bandwidth(&[5.0; 20]).unwrap();
        assert!(bw > 0.0);
        let kde = Kde::from_slice(&[5.0; 20]).unwrap();
        assert!(kde.density(5.0) > kde.density(6.0));
    }
}
