//! Quantile estimation.
//!
//! The paper reports medians and quartiles of error distributions (e.g.
//! Table 3's “Median” column, and the box plots of Figures 4–6). We follow
//! R's default *type 7* (linear interpolation) definition so our numbers are
//! directly comparable to those produced by the authors' R scripts.

use crate::error::check_sample;
use crate::{Result, StatsError};

/// How to interpolate between order statistics when the requested quantile
/// falls between two data points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantileMethod {
    /// R type 7 (default in R, NumPy): linear interpolation between the two
    /// nearest order statistics.
    #[default]
    Linear,
    /// R type 1: inverse of the empirical CDF (lower order statistic).
    Lower,
    /// Nearest order statistic (ties round half up).
    Nearest,
}

/// Computes the `p`-quantile of `xs` (unsorted input).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] / [`StatsError::NonFinite`] for bad
/// samples and [`StatsError::InvalidParameter`] if `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use counterlab_stats::quantile::{quantile, QuantileMethod};
///
/// let q = quantile(&[3.0, 1.0, 2.0, 4.0], 0.5, QuantileMethod::Linear).unwrap();
/// assert_eq!(q, 2.5);
/// ```
pub fn quantile(xs: &[f64], p: f64, method: QuantileMethod) -> Result<f64> {
    check_sample(xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
    quantile_sorted(&sorted, p, method)
}

/// Computes the `p`-quantile of an already-sorted slice.
///
/// This is the allocation-free fast path used by [`crate::boxplot::BoxPlot`]
/// when it has already sorted the sample once.
///
/// # Errors
///
/// As [`quantile`]. The slice is trusted to be sorted; passing an unsorted
/// slice yields a well-defined but meaningless value.
pub fn quantile_sorted(sorted: &[f64], p: f64, method: QuantileMethod) -> Result<f64> {
    if sorted.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter("quantile p must be in [0, 1]"));
    }
    let n = sorted.len();
    match method {
        QuantileMethod::Linear => {
            let h = (n as f64 - 1.0) * p;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            let frac = h - lo as f64;
            Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
        }
        QuantileMethod::Lower => {
            let h = (n as f64 * p).ceil() as usize;
            Ok(sorted[h.saturating_sub(1).min(n - 1)])
        }
        QuantileMethod::Nearest => {
            let h = (n as f64 - 1.0) * p;
            Ok(sorted[(h + 0.5).floor() as usize])
        }
    }
}

/// Median shorthand: `quantile(xs, 0.5, Linear)`.
///
/// # Errors
///
/// As [`quantile`].
///
/// # Examples
///
/// ```
/// let m = counterlab_stats::quantile::median(&[1.0, 5.0, 3.0]).unwrap();
/// assert_eq!(m, 3.0);
/// ```
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5, QuantileMethod::Linear)
}

/// Computes several quantiles at once over a single sorted copy.
///
/// # Errors
///
/// As [`quantile`]; fails on the first invalid `p`.
pub fn quantiles(xs: &[f64], ps: &[f64], method: QuantileMethod) -> Result<Vec<f64>> {
    check_sample(xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
    ps.iter()
        .map(|&p| quantile_sorted(&sorted, p, method))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn extremes_are_min_max() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&xs, 0.0, QuantileMethod::Linear).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0, QuantileMethod::Linear).unwrap(), 9.0);
    }

    #[test]
    fn type7_interpolation_matches_r() {
        // R: quantile(1:10, 0.3) == 3.7
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let q = quantile(&xs, 0.3, QuantileMethod::Linear).unwrap();
        assert!((q - 3.7).abs() < 1e-12);
    }

    #[test]
    fn lower_method_picks_order_statistic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.5, QuantileMethod::Lower).unwrap(), 2.0);
        assert_eq!(quantile(&xs, 0.0, QuantileMethod::Lower).unwrap(), 1.0);
    }

    #[test]
    fn nearest_method() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.4, QuantileMethod::Nearest).unwrap(), 20.0);
    }

    #[test]
    fn out_of_range_p_rejected() {
        assert!(matches!(
            quantile(&[1.0], 1.5, QuantileMethod::Linear),
            Err(StatsError::InvalidParameter(_))
        ));
        assert!(matches!(
            quantile(&[1.0], -0.1, QuantileMethod::Linear),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn quantiles_batch_consistent_with_single() {
        let xs = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
        let ps = [0.25, 0.5, 0.75];
        let batch = quantiles(&xs, &ps, QuantileMethod::Linear).unwrap();
        for (p, q) in ps.iter().zip(&batch) {
            assert_eq!(*q, quantile(&xs, *p, QuantileMethod::Linear).unwrap());
        }
    }

    #[test]
    fn unsorted_input_handled() {
        let q = quantile(&[5.0, 1.0, 4.0, 2.0, 3.0], 0.5, QuantileMethod::Linear).unwrap();
        assert_eq!(q, 3.0);
    }
}
