//! Descriptive statistics: means, variances, and whole-sample summaries.

use crate::error::check_sample;
use crate::quantile::{self, QuantileMethod};
use crate::{Result, StatsError};

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::NonFinite`] if any value is NaN or infinite.
///
/// This is the **shared batch/streaming contract**: the streaming
/// [`crate::stream::Welford::mean`] returns exactly the same errors for
/// the same inputs (`n = 0` → `EmptyInput`, any non-finite observation →
/// `NonFinite`), so the two paths are drop-in interchangeable.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), counterlab_stats::StatsError> {
/// let m = counterlab_stats::descriptive::mean(&[1.0, 2.0, 3.0])?;
/// assert_eq!(m, 2.0);
/// # Ok(()) }
/// ```
pub fn mean(xs: &[f64]) -> Result<f64> {
    check_sample(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance (the unbiased, `n - 1` denominator estimator).
///
/// Uses Welford's online algorithm for numerical stability.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice,
/// [`StatsError::NonFinite`] for non-finite input, and
/// [`StatsError::InvalidParameter`] if the sample has fewer than two points.
///
/// This is the **shared batch/streaming contract**: the streaming
/// [`crate::stream::Welford::variance`] returns exactly the same errors
/// for the same inputs (`n = 0` → `EmptyInput`, `n = 1` →
/// `InvalidParameter`, any non-finite observation → `NonFinite`). Note
/// the distinct singleton conventions, identical on both paths: the
/// strict `variance`/[`crate::stream::Welford::variance`] accessors
/// reject `n = 1`, while the whole-sample summaries
/// ([`Summary::from_slice`] and [`crate::stream::Welford::finish`] /
/// [`crate::stream::SummaryAccumulator::finish`]) report a standard
/// deviation of `0.0` for a singleton.
pub fn variance(xs: &[f64]) -> Result<f64> {
    check_sample(xs)?;
    if xs.len() < 2 {
        return Err(StatsError::InvalidParameter(
            "variance requires at least two observations",
        ));
    }
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i as f64 + 1.0);
        m2 += delta * (x - mean);
    }
    Ok(m2 / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation (square root of [`variance`]).
///
/// # Errors
///
/// Same conditions as [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population variance (the `n` denominator estimator).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::NonFinite`] for non-finite input.
pub fn population_variance(xs: &[f64]) -> Result<f64> {
    check_sample(xs)?;
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Minimum of a sample.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] / [`StatsError::NonFinite`] as in
/// [`mean`].
pub fn min(xs: &[f64]) -> Result<f64> {
    check_sample(xs)?;
    Ok(xs.iter().cloned().fold(f64::INFINITY, f64::min))
}

/// Maximum of a sample.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] / [`StatsError::NonFinite`] as in
/// [`mean`].
pub fn max(xs: &[f64]) -> Result<f64> {
    check_sample(xs)?;
    Ok(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
}

/// A whole-sample descriptive summary: the numbers the paper reports in its
/// tables (median, min) plus the usual supporting moments and quartiles.
///
/// # Examples
///
/// ```
/// use counterlab_stats::descriptive::Summary;
///
/// let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]).unwrap();
/// assert_eq!(s.n(), 4);
/// assert_eq!(s.median(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    q1: f64,
    median: f64,
    q3: f64,
    max: f64,
}

impl Summary {
    /// Computes a summary of `xs`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty slice and
    /// [`StatsError::NonFinite`] for non-finite input.
    pub fn from_slice(xs: &[f64]) -> Result<Self> {
        check_sample(xs)?;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
        let q = |p: f64| quantile::quantile_sorted(&sorted, p, QuantileMethod::Linear);
        Ok(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            std_dev: if xs.len() >= 2 { std_dev(xs)? } else { 0.0 },
            min: sorted[0],
            q1: q(0.25)?,
            median: q(0.5)?,
            q3: q(0.75)?,
            max: sorted[sorted.len() - 1],
        })
    }

    /// Assembles a summary from already-computed parts (the closing step
    /// of [`crate::stream::SummaryAccumulator::finish`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        mean: f64,
        std_dev: f64,
        min: f64,
        q1: f64,
        median: f64,
        q3: f64,
        max: f64,
    ) -> Self {
        Summary {
            n,
            mean,
            std_dev,
            min,
            q1,
            median,
            q3,
            max,
        }
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 for singleton samples).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// First quartile (25th percentile, R type-7 interpolation).
    pub fn q1(&self) -> f64 {
        self.q1
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.median
    }

    /// Third quartile (75th percentile).
    pub fn q3(&self) -> f64 {
        self.q3
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Inter-quartile range `q3 - q1` — the spread statistic the paper quotes
    /// for Figure 1 (“the inter-quartile range amounts to about 1500
    /// user-level instructions”).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Range `max - min`.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3}",
            self.n, self.mean, self.std_dev, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[5.0; 10]).unwrap(), 5.0);
    }

    #[test]
    fn mean_empty_errors() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn variance_matches_hand_computation() {
        // var([1,2,3,4]) with n-1 denominator = (2.25+0.25+0.25+2.25)/3
        let v = variance(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_single_point_errors() {
        assert!(matches!(
            variance(&[1.0]),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn variance_is_shift_invariant() {
        let a = [1.0, 2.0, 3.0, 9.0];
        let b: Vec<f64> = a.iter().map(|x| x + 1e6).collect();
        let va = variance(&a).unwrap();
        let vb = variance(&b).unwrap();
        assert!((va - vb).abs() < 1e-6, "Welford should keep precision");
    }

    #[test]
    fn population_variance_smaller_than_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(population_variance(&xs).unwrap() < variance(&xs).unwrap());
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs).unwrap(), -1.0);
        assert_eq!(max(&xs).unwrap(), 7.0);
    }

    #[test]
    fn summary_quartiles_type7() {
        // R: quantile(c(1,2,3,4), 0.25) = 1.75 with type 7.
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.q1() - 1.75).abs() < 1e-12);
        assert!((s.q3() - 3.25).abs() < 1e-12);
        assert!((s.iqr() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn summary_singleton() {
        let s = Summary::from_slice(&[42.0]).unwrap();
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn summary_display_mentions_all_fields() {
        let s = Summary::from_slice(&[1.0, 2.0]).unwrap();
        let text = s.to_string();
        for key in ["n=", "mean=", "med=", "max="] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
