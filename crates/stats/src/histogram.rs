//! Fixed-width histograms, used by the report renderer to sketch
//! distributions in text output.

use crate::error::check_sample;
use crate::{Result, StatsError};

/// A fixed-width histogram over a closed range.
///
/// # Examples
///
/// ```
/// use counterlab_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.add(1.0);
/// h.add(9.5);
/// h.add(9.9);
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 2]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lo < hi`, both are
    /// finite, and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(StatsError::InvalidParameter(
                "histogram requires finite lo < hi",
            ));
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter("histogram requires bins >= 1"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        })
    }

    /// Builds a histogram spanning the data range of `xs`.
    ///
    /// # Errors
    ///
    /// Sample-validity errors as elsewhere; `bins >= 1` required. A constant
    /// sample gets an artificial ±0.5 range.
    pub fn from_slice(xs: &[f64], bins: usize) -> Result<Self> {
        check_sample(xs)?;
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        let mut h = Histogram::new(lo, hi, bins)?;
        for &x in xs {
            h.add(x);
        }
        Ok(h)
    }

    /// Assembles a histogram from already-binned counts (the closing step
    /// of [`crate::stream::StreamingHistogram::finish`]).
    pub(crate) fn from_parts(lo: f64, hi: f64, counts: Vec<u64>, below: u64, above: u64) -> Self {
        Histogram {
            lo,
            hi,
            counts,
            below,
            above,
        }
    }

    /// Adds one observation. Values outside `[lo, hi]` are tallied in the
    /// under/overflow counters; NaN is ignored.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.lo {
            self.below += 1;
        } else if x > self.hi {
            self.above += 1;
        } else {
            let bins = self.counts.len();
            let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
            self.counts[idx.min(bins - 1)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower bound of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Upper bound of bin `i`.
    pub fn bin_hi(&self, i: usize) -> f64 {
        self.bin_lo(i + 1)
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_assignment() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for &x in &[0.0, 0.5, 1.5, 2.5, 3.5, 4.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 2]); // 4.0 clamps into last bin
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-5.0);
        h.add(0.5);
        h.add(99.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn nan_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn from_slice_spans_data() {
        let h = Histogram::from_slice(&[2.0, 4.0, 6.0], 2).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn constant_sample_ok() {
        let h = Histogram::from_slice(&[7.0; 5], 3).unwrap();
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn bin_bounds() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_hi(0), 2.0);
        assert_eq!(h.bin_lo(4), 8.0);
        assert_eq!(h.bin_hi(4), 10.0);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        for _ in 0..5 {
            h.add(1.5);
        }
        h.add(0.5);
        assert_eq!(h.mode_bin(), 1);
    }
}
