use std::error::Error;
use std::fmt;

/// Errors produced by statistical routines in this crate.
///
/// Every fallible public function in `counterlab-stats` returns this type so
/// that callers can use `?` uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input sample was empty but the statistic requires data.
    EmptyInput,
    /// Paired inputs (e.g. `x` and `y` of a regression) differ in length.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input contained a NaN or infinite value.
    NonFinite,
    /// A parameter was outside its valid domain (e.g. a probability not in
    /// `[0, 1]`, or zero degrees of freedom).
    InvalidParameter(&'static str),
    /// The requested computation is degenerate for this input (e.g. a
    /// regression through points with zero variance in `x`).
    Degenerate(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample is empty"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input lengths differ: {left} vs {right}")
            }
            StatsError::NonFinite => write!(f, "input contains a non-finite value"),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::Degenerate(what) => write!(f, "degenerate computation: {what}"),
        }
    }
}

impl Error for StatsError {}

/// Checks that a slice is non-empty and all-finite.
pub(crate) fn check_sample(xs: &[f64]) -> crate::Result<()> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(StatsError::EmptyInput.to_string(), "input sample is empty");
        assert_eq!(
            StatsError::LengthMismatch { left: 3, right: 5 }.to_string(),
            "input lengths differ: 3 vs 5"
        );
        assert!(StatsError::InvalidParameter("df")
            .to_string()
            .contains("df"));
    }

    #[test]
    fn check_sample_rejects_empty_and_nan() {
        assert_eq!(check_sample(&[]), Err(StatsError::EmptyInput));
        assert_eq!(check_sample(&[1.0, f64::NAN]), Err(StatsError::NonFinite));
        assert_eq!(
            check_sample(&[1.0, f64::INFINITY]),
            Err(StatsError::NonFinite)
        );
        assert!(check_sample(&[0.0, -1.0, 2.5]).is_ok());
    }
}
