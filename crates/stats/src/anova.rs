//! N-way analysis of variance (main effects).
//!
//! Section 4.3 of the paper runs an n-way ANOVA with processor, measurement
//! infrastructure, access pattern, compiler optimization level, and number of
//! used counter registers as factors and the instruction count as the
//! response, finding every factor except the optimization level significant
//! with `Pr(>F) < 2e-16`.
//!
//! [`Anova`] implements the main-effects decomposition used for such
//! (approximately balanced) full-factorial designs: each factor's sum of
//! squares is computed from its level means, the residual takes whatever is
//! left, and p-values come from the F distribution in [`crate::dist`].

use crate::dist::FDistribution;
use crate::{Result, StatsError};
use std::collections::BTreeMap;

/// An experimental factor: a name plus its discrete levels.
///
/// # Examples
///
/// ```
/// use counterlab_stats::anova::Factor;
///
/// let f = Factor::new("processor", ["PD", "CD", "K8"]);
/// assert_eq!(f.level_count(), 3);
/// assert_eq!(f.level_name(1), Some("CD"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factor {
    name: String,
    levels: Vec<String>,
}

impl Factor {
    /// Creates a factor from a name and an ordered list of level labels.
    pub fn new<N, L, I>(name: N, levels: I) -> Self
    where
        N: Into<String>,
        L: Into<String>,
        I: IntoIterator<Item = L>,
    {
        Factor {
            name: name.into(),
            levels: levels.into_iter().map(Into::into).collect(),
        }
    }

    /// Factor name (e.g. `"pattern"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Label of level `i`, if it exists.
    pub fn level_name(&self, i: usize) -> Option<&str> {
        self.levels.get(i).map(String::as_str)
    }

    /// Index of the level with the given label.
    pub fn level_index(&self, label: &str) -> Option<usize> {
        self.levels.iter().position(|l| l == label)
    }
}

/// One row of an ANOVA table: a factor's contribution to the variance.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaRow {
    /// Factor name.
    pub factor: String,
    /// Degrees of freedom (levels − 1).
    pub df: f64,
    /// Sum of squares attributed to the factor.
    pub sum_sq: f64,
    /// Mean square (`sum_sq / df`).
    pub mean_sq: f64,
    /// F statistic against the residual mean square.
    pub f_value: f64,
    /// `Pr(>F)` — probability of an F this large under the null hypothesis
    /// that the factor has no effect.
    pub p_value: f64,
}

impl AnovaRow {
    /// Whether the factor is significant at the given level (e.g. `0.05`).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// A complete ANOVA table: one row per factor plus the residual line.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaTable {
    rows: Vec<AnovaRow>,
    residual_df: f64,
    residual_sum_sq: f64,
    total_sum_sq: f64,
    n: usize,
}

impl AnovaTable {
    /// Per-factor rows in the order the factors were declared.
    pub fn rows(&self) -> &[AnovaRow] {
        &self.rows
    }

    /// Looks up the row for a factor by name.
    pub fn row(&self, factor: &str) -> Option<&AnovaRow> {
        self.rows.iter().find(|r| r.factor == factor)
    }

    /// Residual degrees of freedom.
    pub fn residual_df(&self) -> f64 {
        self.residual_df
    }

    /// Residual sum of squares.
    pub fn residual_sum_sq(&self) -> f64 {
        self.residual_sum_sq
    }

    /// Total sum of squares of the response.
    pub fn total_sum_sq(&self) -> f64 {
        self.total_sum_sq
    }

    /// Number of observations analyzed.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl std::fmt::Display for AnovaTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<16} {:>6} {:>14} {:>14} {:>10} {:>12}",
            "factor", "df", "sum sq", "mean sq", "F", "Pr(>F)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>6.0} {:>14.3} {:>14.3} {:>10.2} {:>12.3e}",
                r.factor, r.df, r.sum_sq, r.mean_sq, r.f_value, r.p_value
            )?;
        }
        writeln!(
            f,
            "{:<16} {:>6.0} {:>14.3}",
            "residuals", self.residual_df, self.residual_sum_sq
        )
    }
}

/// Builder/runner for an n-way main-effects ANOVA.
///
/// # Examples
///
/// ```
/// use counterlab_stats::anova::{Anova, Factor};
///
/// let mut anova = Anova::new(vec![
///     Factor::new("tool", ["pm", "pc"]),
///     Factor::new("mode", ["user", "os"]),
/// ]);
/// // A strong "tool" effect, no "mode" effect.
/// for rep in 0..20 {
///     let noise = if rep % 2 == 0 { 0.1 } else { -0.1 };
///     anova.add(&[0, 0], 10.0 + noise).unwrap();
///     anova.add(&[0, 1], 10.0 - noise).unwrap();
///     anova.add(&[1, 0], 50.0 + noise).unwrap();
///     anova.add(&[1, 1], 50.0 - noise).unwrap();
/// }
/// let table = anova.run().unwrap();
/// assert!(table.row("tool").unwrap().p_value < 1e-10);
/// assert!(table.row("mode").unwrap().p_value > 0.05);
/// ```
/// Internally the builder is a **streaming accumulator**: it keeps only
/// the grand moments (Welford) and per-factor level sums — constant
/// memory in the observation count — so the experiment drivers can feed
/// it record-by-record (or cell-by-cell via [`Anova::add_group`]) without
/// materializing the response vector. Two partial accumulators over
/// disjoint shards combine with [`Anova::merge`].
#[derive(Debug, Clone)]
pub struct Anova {
    factors: Vec<Factor>,
    /// Grand response moments: n, mean and centered sum of squares (the
    /// total SS) via Welford's update.
    grand: crate::stream::Welford,
    /// Per factor: level → (response sum, count).
    level_sums: Vec<BTreeMap<usize, (f64, u64)>>,
}

impl Anova {
    /// Creates an ANOVA over the given factors.
    pub fn new(factors: Vec<Factor>) -> Self {
        let level_sums = factors.iter().map(|_| BTreeMap::new()).collect();
        Anova {
            factors,
            grand: crate::stream::Welford::new(),
            level_sums,
        }
    }

    /// The declared factors.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Number of observations added so far.
    pub fn len(&self) -> usize {
        self.grand.count() as usize
    }

    /// Whether no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.grand.count() == 0
    }

    /// Validates a level vector against the declared factors.
    fn check_levels(&self, levels: &[usize]) -> Result<()> {
        if levels.len() != self.factors.len() {
            return Err(StatsError::LengthMismatch {
                left: levels.len(),
                right: self.factors.len(),
            });
        }
        for (l, f) in levels.iter().zip(&self.factors) {
            if *l >= f.level_count() {
                return Err(StatsError::InvalidParameter("factor level out of range"));
            }
        }
        Ok(())
    }

    /// Adds one observation: its level index for every factor, and the
    /// response value.
    ///
    /// # Errors
    ///
    /// * [`StatsError::LengthMismatch`] if `levels` doesn't have one entry
    ///   per factor;
    /// * [`StatsError::InvalidParameter`] if a level index is out of range;
    /// * [`StatsError::NonFinite`] if the response is NaN or infinite.
    pub fn add(&mut self, levels: &[usize], response: f64) -> Result<()> {
        self.check_levels(levels)?;
        if !response.is_finite() {
            return Err(StatsError::NonFinite);
        }
        self.grand.push(response);
        for (fi, &l) in levels.iter().enumerate() {
            let e = self.level_sums[fi].entry(l).or_insert((0.0, 0));
            e.0 += response;
            e.1 += 1;
        }
        Ok(())
    }

    /// Adds a whole **group** of observations sharing one level vector,
    /// described by its streamed [`crate::stream::Welford`] moments. This
    /// is how the streaming experiment drivers feed a grid cell's
    /// repetitions in one call: statistically identical to `n` individual
    /// [`Anova::add`]s, up to float-summation rounding. An empty group is
    /// a no-op.
    ///
    /// # Errors
    ///
    /// As [`Anova::add`]; a poisoned group (one that saw a non-finite
    /// observation) is rejected with [`StatsError::NonFinite`].
    pub fn add_group(&mut self, levels: &[usize], group: &crate::stream::Welford) -> Result<()> {
        self.check_levels(levels)?;
        if group.is_empty() {
            return Ok(());
        }
        let mean = group.mean()?; // propagates the NonFinite poison
        let n = group.count();
        self.grand.merge(*group);
        for (fi, &l) in levels.iter().enumerate() {
            let e = self.level_sums[fi].entry(l).or_insert((0.0, 0));
            e.0 += mean * n as f64;
            e.1 += n;
        }
        Ok(())
    }

    /// Merges another accumulator over the **same factor declaration**
    /// built from a disjoint shard of the observations.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if the factor declarations differ.
    pub fn merge(&mut self, other: Self) -> Result<()> {
        if self.factors != other.factors {
            return Err(StatsError::InvalidParameter(
                "cannot merge ANOVAs over different factors",
            ));
        }
        self.grand.merge(other.grand);
        for (mine, theirs) in self.level_sums.iter_mut().zip(other.level_sums) {
            for (level, (sum, count)) in theirs {
                let e = mine.entry(level).or_insert((0.0, 0));
                e.0 += sum;
                e.1 += count;
            }
        }
        Ok(())
    }

    /// Runs the analysis and produces the ANOVA table.
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptyInput`] if no observations were added;
    /// * [`StatsError::Degenerate`] if there are no residual degrees of
    ///   freedom (too few observations for the number of factor levels).
    pub fn run(&self) -> Result<AnovaTable> {
        if self.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = self.len();
        let grand_mean = self.grand.mean()?;
        // Welford's centered second moment *is* the total sum of squares.
        let total_sum_sq = self.grand.population_variance()? * n as f64;

        let mut rows = Vec::with_capacity(self.factors.len());
        let mut factor_ss_sum = 0.0;
        let mut factor_df_sum = 0.0;
        for (fi, factor) in self.factors.iter().enumerate() {
            let sums = &self.level_sums[fi];
            let ss: f64 = sums
                .values()
                .map(|(sum, count)| {
                    let mean = sum / *count as f64;
                    *count as f64 * (mean - grand_mean) * (mean - grand_mean)
                })
                .sum();
            // Degrees of freedom use the number of levels actually observed.
            let df = (sums.len() as f64 - 1.0).max(0.0);
            factor_ss_sum += ss;
            factor_df_sum += df;
            rows.push((factor.name.clone(), df, ss));
        }

        let residual_df = n as f64 - 1.0 - factor_df_sum;
        if residual_df <= 0.0 {
            return Err(StatsError::Degenerate(
                "no residual degrees of freedom; add replicate observations",
            ));
        }
        // The main-effects decomposition can overshoot the total in
        // unbalanced designs; clamp the residual at a tiny positive value so
        // F stays finite and large.
        let residual_sum_sq = (total_sum_sq - factor_ss_sum).max(f64::MIN_POSITIVE);
        let residual_mean_sq = residual_sum_sq / residual_df;

        let rows = rows
            .into_iter()
            .map(|(name, df, ss)| {
                let (mean_sq, f_value, p_value) = if df > 0.0 {
                    let ms = ss / df;
                    let f = ms / residual_mean_sq;
                    let p = FDistribution::new(df, residual_df)
                        .and_then(|d| d.sf(f))
                        .unwrap_or(f64::NAN);
                    (ms, f, p)
                } else {
                    (0.0, 0.0, 1.0)
                };
                AnovaRow {
                    factor: name,
                    df,
                    sum_sq: ss,
                    mean_sq,
                    f_value,
                    p_value,
                }
            })
            .collect();

        Ok(AnovaTable {
            rows,
            residual_df,
            residual_sum_sq,
            total_sum_sq,
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_factor_data() -> Anova {
        let mut a = Anova::new(vec![
            Factor::new("infra", ["pm", "pc", "papi"]),
            Factor::new("opt", ["O0", "O1"]),
        ]);
        // infra has a big effect (0/100/200); opt has none. Replicated with
        // deterministic jitter.
        for rep in 0..10 {
            let j = (rep as f64 - 4.5) * 0.2;
            for (ii, base) in [(0usize, 0.0), (1, 100.0), (2, 200.0)] {
                for oi in 0..2usize {
                    a.add(&[ii, oi], base + j).unwrap();
                }
            }
        }
        a
    }

    #[test]
    fn detects_strong_factor_only() {
        let table = two_factor_data().run().unwrap();
        let infra = table.row("infra").unwrap();
        let opt = table.row("opt").unwrap();
        assert!(infra.p_value < 1e-15, "infra p = {}", infra.p_value);
        assert!(opt.p_value > 0.5, "opt p = {}", opt.p_value);
        assert!(infra.significant_at(0.001));
        assert!(!opt.significant_at(0.05));
    }

    #[test]
    fn degrees_of_freedom_accounting() {
        let table = two_factor_data().run().unwrap();
        let total_df: f64 = table.rows().iter().map(|r| r.df).sum::<f64>() + table.residual_df();
        assert_eq!(total_df, table.n() as f64 - 1.0);
        assert_eq!(table.row("infra").unwrap().df, 2.0);
        assert_eq!(table.row("opt").unwrap().df, 1.0);
    }

    #[test]
    fn sums_of_squares_partition() {
        // In a balanced design, factor SS + residual SS == total SS.
        let table = two_factor_data().run().unwrap();
        let ss: f64 = table.rows().iter().map(|r| r.sum_sq).sum::<f64>() + table.residual_sum_sq();
        assert!((ss - table.total_sum_sq()).abs() < 1e-6 * table.total_sum_sq().max(1.0));
    }

    #[test]
    fn empty_rejected() {
        let a = Anova::new(vec![Factor::new("f", ["a", "b"])]);
        assert!(matches!(a.run(), Err(StatsError::EmptyInput)));
    }

    #[test]
    fn level_out_of_range_rejected() {
        let mut a = Anova::new(vec![Factor::new("f", ["a", "b"])]);
        assert!(a.add(&[2], 1.0).is_err());
        assert!(a.add(&[0, 0], 1.0).is_err());
        assert!(a.add(&[0], f64::NAN).is_err());
    }

    #[test]
    fn no_residual_df_rejected() {
        let mut a = Anova::new(vec![Factor::new("f", ["a", "b"])]);
        a.add(&[0], 1.0).unwrap();
        a.add(&[1], 2.0).unwrap();
        assert!(matches!(a.run(), Err(StatsError::Degenerate(_))));
    }

    #[test]
    fn single_factor_matches_classic_one_way() {
        // Classic one-way ANOVA example: three groups.
        let mut a = Anova::new(vec![Factor::new("g", ["a", "b", "c"])]);
        for &y in &[6.0, 8.0, 4.0, 5.0, 3.0, 4.0] {
            a.add(&[0], y).unwrap();
        }
        for &y in &[8.0, 12.0, 9.0, 11.0, 6.0, 8.0] {
            a.add(&[1], y).unwrap();
        }
        for &y in &[13.0, 9.0, 11.0, 8.0, 7.0, 12.0] {
            a.add(&[2], y).unwrap();
        }
        let table = a.run().unwrap();
        let row = table.row("g").unwrap();
        // Hand-computed: SSB = 84, SSW = 68, F = (84/2)/(68/15) ≈ 9.26
        assert!((row.sum_sq - 84.0).abs() < 1e-9, "SSB = {}", row.sum_sq);
        assert!((table.residual_sum_sq() - 68.0).abs() < 1e-9);
        assert!((row.f_value - 9.264_705_88).abs() < 1e-6);
        assert!(row.p_value < 0.01 && row.p_value > 0.0001);
    }

    #[test]
    fn factor_lookup_helpers() {
        let f = Factor::new("pattern", ["ar", "ao", "rr", "ro"]);
        assert_eq!(f.name(), "pattern");
        assert_eq!(f.level_index("rr"), Some(2));
        assert_eq!(f.level_index("xx"), None);
        assert_eq!(f.level_name(3), Some("ro"));
        assert_eq!(f.level_name(4), None);
    }

    #[test]
    fn table_display_renders() {
        let table = two_factor_data().run().unwrap();
        let text = table.to_string();
        assert!(text.contains("Pr(>F)"));
        assert!(text.contains("residuals"));
        assert!(text.contains("infra"));
    }

    /// Rebuilds `two_factor_data` through grouped pushes: per unique level
    /// vector one Welford accumulator, added via `add_group`.
    fn grouped_two_factor_data() -> Anova {
        let mut anova = Anova::new(vec![
            Factor::new("infra", ["pm", "pc", "papi"]),
            Factor::new("opt", ["O0", "O1"]),
        ]);
        let mut groups: std::collections::BTreeMap<(usize, usize), crate::stream::Welford> =
            std::collections::BTreeMap::new();
        for rep in 0..10 {
            let j = (rep as f64 - 4.5) * 0.2;
            for (ii, base) in [(0usize, 0.0), (1, 100.0), (2, 200.0)] {
                for oi in 0..2usize {
                    groups.entry((ii, oi)).or_default().push(base + j);
                }
            }
        }
        for ((a, b), w) in groups {
            anova.add_group(&[a, b], &w).unwrap();
        }
        anova
    }

    #[test]
    fn add_group_matches_individual_adds() {
        let individual = two_factor_data().run().unwrap();
        let grouped = grouped_two_factor_data().run().unwrap();
        assert_eq!(grouped.n(), individual.n());
        for row in individual.rows() {
            let g = grouped.row(&row.factor).unwrap();
            assert_eq!(g.df, row.df);
            assert!(
                (g.sum_sq - row.sum_sq).abs() <= 1e-9 * row.sum_sq.max(1.0),
                "{}: {} vs {}",
                row.factor,
                g.sum_sq,
                row.sum_sq
            );
            assert!((g.f_value - row.f_value).abs() <= 1e-6 * row.f_value.max(1.0));
        }
        let rel = (grouped.total_sum_sq() - individual.total_sum_sq()).abs()
            / individual.total_sum_sq();
        assert!(rel <= 1e-9);
    }

    #[test]
    fn merge_matches_single_accumulator() {
        // Shard the same observations across two accumulators.
        let factors = || {
            vec![
                Factor::new("infra", ["pm", "pc"]),
                Factor::new("mode", ["user", "os"]),
            ]
        };
        let mut whole = Anova::new(factors());
        let mut a = Anova::new(factors());
        let mut b = Anova::new(factors());
        for rep in 0..40 {
            let y = 5.0 + (rep % 7) as f64;
            let levels = [rep % 2, (rep / 2) % 2];
            whole.add(&levels, y).unwrap();
            if rep % 2 == 0 {
                a.add(&levels, y).unwrap();
            } else {
                b.add(&levels, y).unwrap();
            }
        }
        a.merge(b).unwrap();
        let (ta, tw) = (a.run().unwrap(), whole.run().unwrap());
        assert_eq!(ta.n(), tw.n());
        assert!((ta.total_sum_sq() - tw.total_sum_sq()).abs() <= 1e-9 * tw.total_sum_sq());
        for row in tw.rows() {
            let r = ta.row(&row.factor).unwrap();
            assert!((r.sum_sq - row.sum_sq).abs() <= 1e-9 * row.sum_sq.max(1.0));
        }
    }

    #[test]
    fn merge_rejects_mismatched_factors() {
        let mut a = Anova::new(vec![Factor::new("x", ["1", "2"])]);
        let b = Anova::new(vec![Factor::new("y", ["1", "2"])]);
        assert!(a.merge(b).is_err());
    }

    #[test]
    fn add_group_rejects_poisoned_and_bad_levels() {
        let mut anova = Anova::new(vec![Factor::new("x", ["1", "2"])]);
        let mut poisoned = crate::stream::Welford::new();
        poisoned.push(f64::NAN);
        assert_eq!(
            anova.add_group(&[0], &poisoned),
            Err(StatsError::NonFinite)
        );
        let mut ok = crate::stream::Welford::new();
        ok.push(1.0);
        assert!(anova.add_group(&[5], &ok).is_err());
        // Empty group is a no-op.
        anova.add_group(&[0], &crate::stream::Welford::new()).unwrap();
        assert!(anova.is_empty());
    }
}
