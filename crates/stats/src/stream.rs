//! One-pass (streaming) statistics accumulators.
//!
//! The paper's error analysis (§3–§5) only ever needs per-cell *summaries*
//! — means, variances, quantiles, outlier proportions — yet the batch API
//! ([`crate::descriptive::Summary::from_slice`] and friends) requires the
//! full sample to be resident. This module provides constant-memory
//! accumulators with a uniform contract:
//!
//! * `push(f64)` — fold one observation in, O(1) amortized;
//! * `merge(Self)` — combine two accumulators built over disjoint shards
//!   of one sample (the parallel execution engine merges worker shards
//!   lowest-worker-first);
//! * `finish()` — produce the summary, with the **same error contract as
//!   the batch routine it mirrors** (see each type's docs).
//!
//! | accumulator | batch equivalent | exactness |
//! |-------------|------------------|-----------|
//! | [`Welford`] | [`crate::descriptive::mean`] / [`crate::descriptive::variance`] / min / max | exact counts/extremes; mean and variance to ~1 ulp per merge |
//! | [`P2Quantile`] | [`crate::quantile::quantile`] | exact up to its window, then P² (see caveat) |
//! | [`SummaryAccumulator`] | [`crate::descriptive::Summary::from_slice`] | exact up to its window, then P² quartiles |
//! | [`StreamingHistogram`] | [`crate::histogram::Histogram::from_slice`] | exact up to its window, then rebinned |
//! | [`Covariance`] | [`crate::regression::LinearFit::fit`] | slope/intercept/R² to ~1 ulp per merge |
//!
//! # The P² accuracy caveat
//!
//! Exact streaming quantiles are impossible in constant memory, so
//! [`P2Quantile`] (and the quartiles inside [`SummaryAccumulator`]) keep an
//! **exact sorted window** of the first observations (64 by default for
//! `P2Quantile`, 512 for `SummaryAccumulator`) and fall back to the P²
//! estimator of Jain & Chlamtac (CACM 1985) once the window overflows.
//! Within the window, results are bit-identical to
//! [`crate::quantile::quantile_sorted`]. Beyond it the estimate is
//! approximate: at the **default window sizes** (which seed the P² markers
//! from a full window of exact order statistics before any approximation
//! starts) the error stays under **5 % of the sample range** for the
//! unimodal, not-too-heavy-tailed data measured here, and that is the
//! tolerance the equivalence suite (`tests/streaming_equivalence.rs`)
//! locks in for n ≥ 50. Shrinking the window below the default trades
//! that accuracy for memory — the sketch then converges from only a
//! handful of seed points. Merging two accumulators
//! that have *both* overflowed their windows is a further heuristic
//! (weighted interpolation of the marker CDFs) — accurate enough for
//! figure-level medians, not for tail quantiles of adversarial data. When
//! exactness matters, size the window above the sample (or use the batch
//! API).
//!
//! # Examples
//!
//! ```
//! use counterlab_stats::stream::SummaryAccumulator;
//!
//! let mut acc = SummaryAccumulator::new();
//! for x in [4.0, 1.0, 3.0, 2.0] {
//!     acc.push(x);
//! }
//! let s = acc.finish().unwrap();
//! assert_eq!(s.n(), 4);
//! assert_eq!(s.median(), 2.5);
//! assert_eq!(s.min(), 1.0);
//! ```

use crate::descriptive::Summary;
use crate::histogram::Histogram;
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::{Result, StatsError};

/// An accumulator that can absorb another built over a disjoint shard of
/// the same sample — the operation the execution engine applies to worker
/// shards (lowest-worker-first).
pub trait Merge {
    /// Absorbs `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Merges two equal-length shard vectors element-by-element: the standard
/// reduction for "one accumulator per group, one vector per worker"
/// folds. Trailing elements of the longer side (there should be none when
/// both vectors came from the same `new_shard`) are dropped.
pub fn merge_zip<A: Merge>(mut a: Vec<A>, b: Vec<A>) -> Vec<A> {
    for (x, y) in a.iter_mut().zip(b) {
        x.merge(y);
    }
    a
}

/// Default exact-window size of a standalone [`P2Quantile`].
pub const P2_DEFAULT_EXACT_WINDOW: usize = 64;

/// Default exact-window size of a [`SummaryAccumulator`].
pub const SUMMARY_DEFAULT_EXACT_WINDOW: usize = 512;

/// Streaming mean / variance / min / max (Welford's online algorithm with
/// Chan's parallel merge).
///
/// Mirrors [`crate::descriptive::mean`] and
/// [`crate::descriptive::variance`] with the **identical error contract**
/// (documented there as the shared batch/streaming contract):
///
/// * `n = 0` → [`StatsError::EmptyInput`] from every statistic;
/// * any non-finite observation → [`StatsError::NonFinite`] from every
///   statistic (the accumulator is poisoned, exactly as the batch
///   functions reject the whole sample);
/// * `n = 1` → [`Welford::variance`] returns
///   [`StatsError::InvalidParameter`], while [`Welford::finish`] reports a
///   standard deviation of `0.0` (the [`Summary::from_slice`] singleton
///   convention).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    nonfinite: bool,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nonfinite: false,
        }
    }

    /// Folds one observation in. A non-finite value poisons the
    /// accumulator: every subsequent statistic returns
    /// [`StatsError::NonFinite`], matching the batch functions' whole-sample
    /// rejection.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.nonfinite = true;
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator built over a disjoint shard of the same
    /// sample (Chan et al.'s pairwise update). Counts and extremes merge
    /// exactly; mean and variance to within ~1 ulp per merge, so any merge
    /// tree over the same observations agrees to ≤ 1e-9 relative error.
    pub fn merge(&mut self, other: Self) {
        self.nonfinite |= other.nonfinite;
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = Welford {
                nonfinite: self.nonfinite,
                ..other
            };
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n += other.n;
    }

    /// Number of finite observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0 && !self.nonfinite
    }

    fn check(&self) -> Result<()> {
        if self.nonfinite {
            return Err(StatsError::NonFinite);
        }
        if self.n == 0 {
            return Err(StatsError::EmptyInput);
        }
        Ok(())
    }

    /// Arithmetic mean; same contract as [`crate::descriptive::mean`].
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`].
    pub fn mean(&self) -> Result<f64> {
        self.check()?;
        Ok(self.mean)
    }

    /// Unbiased (`n − 1`) sample variance; same contract as
    /// [`crate::descriptive::variance`].
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`], and
    /// [`StatsError::InvalidParameter`] for `n = 1`.
    pub fn variance(&self) -> Result<f64> {
        self.check()?;
        if self.n < 2 {
            return Err(StatsError::InvalidParameter(
                "variance requires at least two observations",
            ));
        }
        Ok(self.m2 / (self.n as f64 - 1.0))
    }

    /// Population (`n`) variance; same contract as
    /// [`crate::descriptive::population_variance`].
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`].
    pub fn population_variance(&self) -> Result<f64> {
        self.check()?;
        Ok(self.m2 / self.n as f64)
    }

    /// Sample standard deviation.
    ///
    /// # Errors
    ///
    /// As [`Welford::variance`].
    pub fn std_dev(&self) -> Result<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`].
    pub fn min(&self) -> Result<f64> {
        self.check()?;
        Ok(self.min)
    }

    /// Largest observation.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`].
    pub fn max(&self) -> Result<f64> {
        self.check()?;
        Ok(self.max)
    }

    /// Closes the accumulator into a [`Moments`] summary. Uses the
    /// [`Summary::from_slice`] singleton convention: `n = 1` reports a
    /// standard deviation of `0.0` rather than an error.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`].
    pub fn finish(&self) -> Result<Moments> {
        self.check()?;
        Ok(Moments {
            n: self.n,
            mean: self.mean,
            std_dev: if self.n >= 2 {
                (self.m2 / (self.n as f64 - 1.0)).sqrt()
            } else {
                0.0
            },
            min: self.min,
            max: self.max,
        })
    }
}

impl Merge for Welford {
    fn merge(&mut self, other: Self) {
        Welford::merge(self, other);
    }
}

/// The closed-out summary of a [`Welford`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Number of observations.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`0.0` for a singleton, as in
    /// [`Summary::from_slice`]).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// The five-marker core of the P² quantile estimator (Jain & Chlamtac,
/// CACM 1985). Always holds ≥ 5 observations.
#[derive(Debug, Clone, PartialEq)]
struct P2Core {
    p: f64,
    /// Marker heights (estimates of the 0, p/2, p, (1+p)/2, 1 quantiles).
    q: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    count: u64,
}

impl P2Core {
    /// The ideal cumulative fractions of the five markers.
    fn fractions(p: f64) -> [f64; 5] {
        [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
    }

    /// Initializes the markers from an exact sorted window: heights are the
    /// window's own type-7 quantiles, positions their ideal ranks.
    fn from_sorted(sorted: &[f64], p: f64) -> Self {
        debug_assert!(sorted.len() >= 5);
        let count = sorted.len() as u64;
        let fs = Self::fractions(p);
        let mut q = [0.0; 5];
        let mut n = [0.0; 5];
        let mut np = [0.0; 5];
        for (i, &f) in fs.iter().enumerate() {
            q[i] = quantile_sorted(sorted, f, QuantileMethod::Linear)
                .expect("window is non-empty and finite");
            np[i] = 1.0 + (count as f64 - 1.0) * f;
            n[i] = np[i].round();
        }
        // Ranks must stay strictly increasing for the parabolic update.
        for i in 1..5 {
            if n[i] <= n[i - 1] {
                n[i] = n[i - 1] + 1.0;
            }
        }
        n[4] = count as f64;
        P2Core { p, q, n, np, count }
    }

    fn push(&mut self, x: f64) {
        self.count += 1;
        // Locate the cell and adjust the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.q[k + 1] {
                k += 1;
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        let fs = Self::fractions(self.p);
        for (i, &f) in fs.iter().enumerate() {
            self.np[i] = 1.0 + (self.count as f64 - 1.0) * f;
        }
        // Adjust the interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// The piecewise-parabolic (P²) height update.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate of the `p` quantile: the middle marker, except
    /// at the extremes, where the outer markers are exact (the marker
    /// fractions degenerate for `p ∈ {0, 1}`).
    fn estimate(&self) -> f64 {
        if self.p == 0.0 {
            self.q[0]
        } else if self.p == 1.0 {
            self.q[4]
        } else {
            self.q[2]
        }
    }

    /// Interpolated estimate of an arbitrary cumulative fraction from the
    /// marker CDF (used by the merge heuristic).
    fn quantile_at(&self, f: f64) -> f64 {
        if self.count <= 1 {
            return self.q[2];
        }
        let rank = 1.0 + (self.count as f64 - 1.0) * f;
        if rank <= self.n[0] {
            return self.q[0];
        }
        for i in 0..4 {
            if rank <= self.n[i + 1] {
                let span = self.n[i + 1] - self.n[i];
                let t = if span > 0.0 { (rank - self.n[i]) / span } else { 0.0 };
                return self.q[i] + t * (self.q[i + 1] - self.q[i]);
            }
        }
        self.q[4]
    }

    /// Heuristic merge: each marker of the result is the count-weighted
    /// blend of the two inputs' estimates at that marker's cumulative
    /// fraction; the extremes take the true min/max. Approximate — see the
    /// module-level P² caveat.
    fn merge(&mut self, other: &P2Core) {
        let total = self.count + other.count;
        let wa = self.count as f64 / total as f64;
        let wb = 1.0 - wa;
        let fs = Self::fractions(self.p);
        let mut q = [0.0; 5];
        for (i, &f) in fs.iter().enumerate() {
            q[i] = wa * self.quantile_at(f) + wb * other.quantile_at(f);
        }
        q[0] = self.q[0].min(other.q[0]);
        q[4] = self.q[4].max(other.q[4]);
        // Re-sort defensively: the blend cannot invert interior markers for
        // monotone inputs, but the extremes snap outward.
        for i in 1..5 {
            if q[i] < q[i - 1] {
                q[i] = q[i - 1];
            }
        }
        let mut n = [0.0; 5];
        let mut np = [0.0; 5];
        for (i, &f) in fs.iter().enumerate() {
            np[i] = 1.0 + (total as f64 - 1.0) * f;
            n[i] = np[i].round();
        }
        for i in 1..5 {
            if n[i] <= n[i - 1] {
                n[i] = n[i - 1] + 1.0;
            }
        }
        n[4] = n[4].max(total as f64);
        self.q = q;
        self.n = n;
        self.np = np;
        self.count = total;
    }
}

/// How a quantile accumulator currently stores its observations.
#[derive(Debug, Clone, PartialEq)]
enum QuantState {
    /// Exact sorted window (bit-identical to the batch quantile).
    Exact(Vec<f64>),
    /// Spilled to the constant-memory P² sketch.
    Sketch(P2Core),
}

/// Streaming estimator of an arbitrary `p`-quantile: exact up to a
/// configurable window, then the P² algorithm (see the module-level
/// accuracy caveat).
///
/// # Examples
///
/// ```
/// use counterlab_stats::stream::P2Quantile;
///
/// let mut med = P2Quantile::new(0.5).unwrap();
/// for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
///     med.push(x);
/// }
/// assert_eq!(med.finish().unwrap(), 3.0); // still inside the exact window
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    window: usize,
    state: QuantState,
    nonfinite: bool,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile with the default exact window
    /// ([`P2_DEFAULT_EXACT_WINDOW`]).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] unless `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidParameter("quantile p must be in [0, 1]"));
        }
        Ok(P2Quantile {
            p,
            window: P2_DEFAULT_EXACT_WINDOW,
            state: QuantState::Exact(Vec::new()),
            nonfinite: false,
        })
    }

    /// Overrides the exact-window size (clamped to ≥ 5, the P² marker
    /// count). Results are bit-identical to the batch quantile while the
    /// observation count stays within the window.
    pub fn with_exact_window(mut self, window: usize) -> Self {
        self.window = window.max(5);
        self
    }

    /// The target cumulative probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of finite observations folded in.
    pub fn count(&self) -> u64 {
        match &self.state {
            QuantState::Exact(buf) => buf.len() as u64,
            QuantState::Sketch(core) => core.count,
        }
    }

    /// Folds one observation in. Non-finite values poison the estimator
    /// (matching the batch functions' whole-sample rejection).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.nonfinite = true;
            return;
        }
        match &mut self.state {
            QuantState::Exact(buf) => {
                let at = buf.partition_point(|&v| v < x);
                buf.insert(at, x);
                if buf.len() > self.window {
                    self.state = QuantState::Sketch(P2Core::from_sorted(buf, self.p));
                }
            }
            QuantState::Sketch(core) => core.push(x),
        }
    }

    /// Merges another estimator for the **same** `p` built over a disjoint
    /// shard. Exact while the union fits either window; heuristic once both
    /// sides have spilled (module-level caveat).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if the two estimators target
    /// different quantiles.
    pub fn merge(&mut self, other: Self) -> Result<()> {
        if self.p != other.p {
            return Err(StatsError::InvalidParameter(
                "cannot merge estimators of different quantiles",
            ));
        }
        self.nonfinite |= other.nonfinite;
        match (&mut self.state, other.state) {
            (QuantState::Exact(_), QuantState::Exact(buf)) => {
                for x in buf {
                    self.push(x);
                }
            }
            (QuantState::Sketch(core), QuantState::Exact(buf)) => {
                // The exact side replays in sorted order: deterministic.
                for x in buf {
                    core.push(x);
                }
            }
            (QuantState::Exact(buf), QuantState::Sketch(mut core)) => {
                for &x in buf.iter() {
                    core.push(x);
                }
                self.state = QuantState::Sketch(core);
            }
            (QuantState::Sketch(core), QuantState::Sketch(other_core)) => {
                core.merge(&other_core);
            }
        }
        Ok(())
    }

    /// The current quantile estimate.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] / [`StatsError::NonFinite`], matching
    /// [`crate::quantile::quantile`].
    pub fn finish(&self) -> Result<f64> {
        if self.nonfinite {
            return Err(StatsError::NonFinite);
        }
        match &self.state {
            QuantState::Exact(buf) => quantile_sorted(buf, self.p, QuantileMethod::Linear),
            QuantState::Sketch(core) => Ok(core.estimate()),
        }
    }
}

/// How a [`SummaryAccumulator`] currently stores order statistics.
#[derive(Debug, Clone, PartialEq)]
enum SummaryState {
    /// One shared exact sorted window for all three quartiles.
    Exact(Vec<f64>),
    /// Spilled: three P² sketches (q1, median, q3).
    Sketch(Box<[P2Core; 3]>),
}

/// Streaming mirror of [`Summary::from_slice`]: one pass, constant memory,
/// same eight summary numbers.
///
/// Moments and extremes come from [`Welford`] (exact contract); the
/// quartiles share one exact sorted window
/// ([`SUMMARY_DEFAULT_EXACT_WINDOW`] observations by default) and degrade
/// to three P² sketches beyond it (module-level caveat). `finish` has the
/// **same error contract** as [`Summary::from_slice`]: empty →
/// [`StatsError::EmptyInput`], any non-finite observation →
/// [`StatsError::NonFinite`], singleton → standard deviation `0.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryAccumulator {
    welford: Welford,
    window: usize,
    state: SummaryState,
}

impl Default for SummaryAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl SummaryAccumulator {
    /// An empty accumulator with the default exact window.
    pub fn new() -> Self {
        SummaryAccumulator {
            welford: Welford::new(),
            window: SUMMARY_DEFAULT_EXACT_WINDOW,
            state: SummaryState::Exact(Vec::new()),
        }
    }

    /// Overrides the exact-window size (clamped to ≥ 5). While the
    /// observation count stays within the window, `finish()` is equal to
    /// [`Summary::from_slice`] up to float-summation rounding (≤ 1e-9
    /// relative).
    pub fn with_exact_window(mut self, window: usize) -> Self {
        self.window = window.max(5);
        self
    }

    /// Number of finite observations folded in.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Whether nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.welford.is_empty()
    }

    /// The streaming moments accumulator backing this summary.
    pub fn moments(&self) -> &Welford {
        &self.welford
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.welford.push(x);
        if x.is_finite() {
            self.push_order_stat(x);
        }
    }

    /// Merges another accumulator built over a disjoint shard of the same
    /// sample. Exact (up to ≤ 1e-9 relative float rounding) while the union
    /// fits either window; heuristic quartiles once both sides have spilled
    /// (module-level caveat).
    pub fn merge(&mut self, other: Self) {
        self.welford.merge(other.welford);
        match (&mut self.state, other.state) {
            (SummaryState::Exact(_), SummaryState::Exact(buf)) => {
                for x in buf {
                    self.push_order_stat(x);
                }
            }
            (SummaryState::Sketch(cores), SummaryState::Exact(buf)) => {
                for x in buf {
                    for core in cores.iter_mut() {
                        core.push(x);
                    }
                }
            }
            (SummaryState::Exact(buf), SummaryState::Sketch(mut cores)) => {
                for &x in buf.iter() {
                    for core in cores.iter_mut() {
                        core.push(x);
                    }
                }
                self.state = SummaryState::Sketch(cores);
            }
            (SummaryState::Sketch(cores), SummaryState::Sketch(other_cores)) => {
                for (core, other_core) in cores.iter_mut().zip(other_cores.iter()) {
                    core.merge(other_core);
                }
            }
        }
    }

    /// Order-statistic-only push (the moments were already merged).
    fn push_order_stat(&mut self, x: f64) {
        match &mut self.state {
            SummaryState::Exact(buf) => {
                let at = buf.partition_point(|&v| v < x);
                buf.insert(at, x);
                if buf.len() > self.window {
                    self.state = SummaryState::Sketch(Box::new([
                        P2Core::from_sorted(buf, 0.25),
                        P2Core::from_sorted(buf, 0.5),
                        P2Core::from_sorted(buf, 0.75),
                    ]));
                }
            }
            SummaryState::Sketch(cores) => {
                for core in cores.iter_mut() {
                    core.push(x);
                }
            }
        }
    }

    /// Closes the accumulator into a [`Summary`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Summary::from_slice`]:
    /// [`StatsError::EmptyInput`] for no observations,
    /// [`StatsError::NonFinite`] if any pushed value was NaN or infinite.
    pub fn finish(&self) -> Result<Summary> {
        let m = self.welford.finish()?;
        let (q1, median, q3) = match &self.state {
            SummaryState::Exact(buf) => (
                quantile_sorted(buf, 0.25, QuantileMethod::Linear)?,
                quantile_sorted(buf, 0.5, QuantileMethod::Linear)?,
                quantile_sorted(buf, 0.75, QuantileMethod::Linear)?,
            ),
            SummaryState::Sketch(cores) => (
                cores[0].estimate(),
                cores[1].estimate(),
                cores[2].estimate(),
            ),
        };
        Ok(Summary::from_parts(
            m.n as usize,
            m.mean,
            m.std_dev,
            m.min,
            q1,
            median,
            q3,
            m.max,
        ))
    }
}

impl Merge for SummaryAccumulator {
    fn merge(&mut self, other: Self) {
        SummaryAccumulator::merge(self, other);
    }
}

/// How a [`StreamingHistogram`] currently stores observations.
#[derive(Debug, Clone, PartialEq)]
enum HistState {
    /// Exact values, range not yet fixed.
    Exact(Vec<f64>),
    /// Fixed-bin counts over `[lo, hi]`.
    Binned { lo: f64, hi: f64, counts: Vec<u64> },
}

/// A histogram that needs no a-priori range: it buffers exactly until its
/// window fills, fixes its range from the data seen, and thereafter grows
/// by doubling its span (merging bin pairs) whenever a value falls
/// outside. Bin boundaries therefore depend on arrival order — the sketch
/// is for *rendering* distribution shapes, not for exact counts per
/// interval (use [`Histogram`] when the range is known).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    bins: usize,
    window: usize,
    state: HistState,
    /// ±∞ observations, kept out of the finite range (NaN is dropped, as
    /// in [`Histogram::add`]).
    below: u64,
    above: u64,
}

impl StreamingHistogram {
    /// A histogram with `bins` bins (window = `4 × bins` exact values).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if `bins == 0`.
    pub fn new(bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("histogram requires bins >= 1"));
        }
        Ok(StreamingHistogram {
            bins,
            window: bins * 4,
            state: HistState::Exact(Vec::new()),
            below: 0,
            above: 0,
        })
    }

    /// Number of finite observations folded in.
    pub fn count(&self) -> u64 {
        match &self.state {
            HistState::Exact(buf) => buf.len() as u64,
            HistState::Binned { counts, .. } => counts.iter().sum(),
        }
    }

    /// Folds one observation in: NaN is dropped, ±∞ is tallied separately,
    /// finite values always land in a bin (the range grows to cover them).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x == f64::NEG_INFINITY {
            self.below += 1;
            return;
        }
        if x == f64::INFINITY {
            self.above += 1;
            return;
        }
        match &mut self.state {
            HistState::Exact(buf) => {
                buf.push(x);
                if buf.len() > self.window {
                    self.spill();
                }
            }
            HistState::Binned { .. } => {
                self.grow_to_cover(x);
                if let HistState::Binned { lo, hi, counts } = &mut self.state {
                    let bins = counts.len();
                    let idx = (((x - *lo) / (*hi - *lo)) * bins as f64) as usize;
                    counts[idx.min(bins - 1)] += 1;
                }
            }
        }
    }

    /// Fixes the range from the exact window and bins its contents.
    fn spill(&mut self) {
        let HistState::Exact(buf) = &self.state else {
            return;
        };
        let lo = buf.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = buf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if lo == hi { (lo - 0.5, hi + 0.5) } else { (lo, hi) };
        let mut counts = vec![0u64; self.bins];
        for &x in buf {
            let idx = (((x - lo) / (hi - lo)) * self.bins as f64) as usize;
            counts[idx.min(self.bins - 1)] += 1;
        }
        self.state = HistState::Binned { lo, hi, counts };
    }

    /// Doubles the span (merging adjacent bin pairs) until `x` is covered.
    fn grow_to_cover(&mut self, x: f64) {
        let HistState::Binned { lo, hi, counts } = &mut self.state else {
            return;
        };
        while x < *lo || x > *hi {
            let width = *hi - *lo;
            let bins = counts.len();
            let mut merged = vec![0u64; bins];
            for (i, &c) in counts.iter().enumerate() {
                merged[i / 2] += c;
            }
            if x < *lo {
                // Extend downward: old counts occupy the upper half.
                let half = bins / 2;
                let mut shifted = vec![0u64; bins];
                shifted[half..].copy_from_slice(&merged[..bins - half]);
                *counts = shifted;
                *lo -= width;
            } else {
                *counts = merged;
                *hi += width;
            }
        }
    }

    /// Merges another histogram built over a disjoint shard. Bin counts
    /// are remapped by bin midpoint when ranges differ — approximate, like
    /// every post-binning operation.
    pub fn merge(&mut self, other: Self) {
        self.below += other.below;
        self.above += other.above;
        match other.state {
            HistState::Exact(buf) => {
                for x in buf {
                    self.push(x);
                }
            }
            HistState::Binned { lo, hi, counts } => {
                // Ensure self is binned and covers the other's range.
                if let HistState::Exact(_) = self.state {
                    self.spill_or_init(lo, hi);
                }
                self.grow_to_cover(lo);
                self.grow_to_cover(hi);
                let bins = counts.len();
                let width = (hi - lo) / bins as f64;
                for (i, &c) in counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let mid = lo + (i as f64 + 0.5) * width;
                    if let HistState::Binned { lo, hi, counts } = &mut self.state {
                        let b = counts.len();
                        let idx = (((mid - *lo) / (*hi - *lo)) * b as f64) as usize;
                        counts[idx.min(b - 1)] += c;
                    }
                }
            }
        }
    }

    /// Forces the exact window into bins, seeding the range from the
    /// window if it has data or from the given bounds otherwise.
    fn spill_or_init(&mut self, lo: f64, hi: f64) {
        if let HistState::Exact(buf) = &self.state {
            if buf.is_empty() {
                let (lo, hi) = if lo == hi { (lo - 0.5, hi + 0.5) } else { (lo, hi) };
                self.state = HistState::Binned {
                    lo,
                    hi,
                    counts: vec![0; self.bins],
                };
            } else {
                self.spill();
            }
        }
    }

    /// Closes the sketch into a concrete [`Histogram`].
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no finite value was pushed.
    pub fn finish(&self) -> Result<Histogram> {
        match &self.state {
            HistState::Exact(buf) => {
                if buf.is_empty() {
                    return Err(StatsError::EmptyInput);
                }
                Histogram::from_slice(buf, self.bins)
            }
            HistState::Binned { lo, hi, counts } => Ok(Histogram::from_parts(
                *lo,
                *hi,
                counts.clone(),
                self.below,
                self.above,
            )),
        }
    }
}

impl Merge for StreamingHistogram {
    fn merge(&mut self, other: Self) {
        StreamingHistogram::merge(self, other);
    }
}

/// Streaming simple linear regression: the bivariate analogue of
/// [`Welford`], accumulating co-moments so that
/// [`Covariance::slope`] / [`Covariance::intercept`] /
/// [`Covariance::r_squared`] reproduce [`crate::regression::LinearFit`]
/// with the **same error contract**, one `(x, y)` pair at a time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Covariance {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
    nonfinite: bool,
}

impl Covariance {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one `(x, y)` observation in. A non-finite coordinate poisons
    /// the accumulator (matching [`crate::regression::LinearFit::fit`]'s
    /// whole-sample rejection).
    pub fn push(&mut self, x: f64, y: f64) {
        if !(x.is_finite() && y.is_finite()) {
            self.nonfinite = true;
            return;
        }
        self.n += 1;
        let nf = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / nf;
        self.mean_y += dy / nf;
        // Co-moment update uses the *new* x mean (Welford's pattern).
        self.cxy += dx * (y - self.mean_y);
        self.m2x += dx * (x - self.mean_x);
        self.m2y += dy * (y - self.mean_y);
    }

    /// Merges another accumulator built over a disjoint shard (Chan's
    /// update, extended to the co-moment).
    pub fn merge(&mut self, other: Self) {
        self.nonfinite |= other.nonfinite;
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = Covariance {
                nonfinite: self.nonfinite,
                ..other
            };
            return;
        }
        let n = (self.n + other.n) as f64;
        let w = self.n as f64 * other.n as f64 / n;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.m2x += other.m2x + dx * dx * w;
        self.m2y += other.m2y + dy * dy * w;
        self.cxy += other.cxy + dx * dy * w;
        self.mean_x += dx * other.n as f64 / n;
        self.mean_y += dy * other.n as f64 / n;
        self.n += other.n;
    }

    /// Number of finite pairs folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    fn check(&self) -> Result<()> {
        if self.nonfinite {
            return Err(StatsError::NonFinite);
        }
        if self.n == 0 {
            return Err(StatsError::EmptyInput);
        }
        if self.n < 2 {
            return Err(StatsError::InvalidParameter(
                "regression requires at least two points",
            ));
        }
        if self.m2x == 0.0 {
            return Err(StatsError::Degenerate("all x values are identical"));
        }
        Ok(())
    }

    /// OLS slope of `y` on `x`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::regression::LinearFit::fit`]:
    /// [`StatsError::EmptyInput`], [`StatsError::NonFinite`],
    /// [`StatsError::InvalidParameter`] (fewer than two points),
    /// [`StatsError::Degenerate`] (zero x-variance).
    pub fn slope(&self) -> Result<f64> {
        self.check()?;
        Ok(self.cxy / self.m2x)
    }

    /// OLS intercept.
    ///
    /// # Errors
    ///
    /// As [`Covariance::slope`].
    pub fn intercept(&self) -> Result<f64> {
        let slope = self.slope()?;
        Ok(self.mean_y - slope * self.mean_x)
    }

    /// Coefficient of determination R².
    ///
    /// # Errors
    ///
    /// As [`Covariance::slope`].
    pub fn r_squared(&self) -> Result<f64> {
        self.check()?;
        if self.m2y == 0.0 {
            return Ok(1.0);
        }
        let slope = self.cxy / self.m2x;
        let ss_res = (self.m2y - slope * self.cxy).max(0.0);
        Ok(1.0 - ss_res / self.m2y)
    }
}

impl Merge for Covariance {
    fn merge(&mut self, other: Self) {
        Covariance::merge(self, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    fn sample(n: usize) -> Vec<f64> {
        // Deterministic, irregular, positive-and-negative sample.
        (0..n)
            .map(|i| ((i * 2654435761) % 10_000) as f64 / 7.0 - 500.0)
            .collect()
    }

    #[test]
    fn welford_matches_batch() {
        let xs = sample(1000);
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = descriptive::mean(&xs).unwrap();
        let var = descriptive::variance(&xs).unwrap();
        assert!((w.mean().unwrap() - mean).abs() <= 1e-9 * mean.abs().max(1.0));
        assert!((w.variance().unwrap() - var).abs() <= 1e-9 * var);
        assert_eq!(w.min().unwrap(), descriptive::min(&xs).unwrap());
        assert_eq!(w.max().unwrap(), descriptive::max(&xs).unwrap());
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn welford_empty_and_singleton_contract() {
        let w = Welford::new();
        assert_eq!(w.mean(), Err(StatsError::EmptyInput));
        assert_eq!(w.variance(), Err(StatsError::EmptyInput));
        assert_eq!(w.finish().unwrap_err(), StatsError::EmptyInput);
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean().unwrap(), 42.0);
        assert!(matches!(w.variance(), Err(StatsError::InvalidParameter(_))));
        let m = w.finish().unwrap();
        assert_eq!(m.std_dev, 0.0);
        assert_eq!((m.min, m.max), (42.0, 42.0));
    }

    #[test]
    fn welford_poisoned_by_nonfinite() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(f64::NAN);
        w.push(2.0);
        assert_eq!(w.mean(), Err(StatsError::NonFinite));
        assert_eq!(w.finish().unwrap_err(), StatsError::NonFinite);
        // Matches the batch contract.
        assert_eq!(
            descriptive::mean(&[1.0, f64::NAN, 2.0]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let xs = sample(997);
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        for shards in [2, 4, 7] {
            let mut parts: Vec<Welford> = (0..shards).map(|_| Welford::new()).collect();
            for (i, &x) in xs.iter().enumerate() {
                parts[i % shards].push(x);
            }
            let mut merged = parts.remove(0);
            for p in parts {
                merged.merge(p);
            }
            assert_eq!(merged.count(), whole.count());
            assert_eq!(merged.min().unwrap(), whole.min().unwrap());
            assert_eq!(merged.max().unwrap(), whole.max().unwrap());
            let (ma, mb) = (merged.mean().unwrap(), whole.mean().unwrap());
            assert!((ma - mb).abs() <= 1e-9 * mb.abs().max(1.0), "{shards} shards");
            let (va, vb) = (merged.variance().unwrap(), whole.variance().unwrap());
            assert!((va - vb).abs() <= 1e-9 * vb, "{shards} shards");
        }
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(3.0);
        w.push(5.0);
        let before = w;
        w.merge(Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(before);
        assert_eq!(e, before);
    }

    #[test]
    fn p2_exact_within_window() {
        let xs = sample(60);
        let mut q = P2Quantile::new(0.5).unwrap().with_exact_window(64);
        for &x in &xs {
            q.push(x);
        }
        assert_eq!(
            q.finish().unwrap(),
            crate::quantile::median(&xs).unwrap(),
            "window not exceeded, must be bit-exact"
        );
    }

    #[test]
    fn p2_sketch_tracks_batch_quantiles() {
        let xs = sample(5000);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let range = sorted[sorted.len() - 1] - sorted[0];
        for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let mut q = P2Quantile::new(p).unwrap();
            for &x in &xs {
                q.push(x);
            }
            let exact = quantile_sorted(&sorted, p, QuantileMethod::Linear).unwrap();
            let est = q.finish().unwrap();
            assert!(
                (est - exact).abs() <= 0.05 * range,
                "p={p}: est {est} vs exact {exact} (range {range})"
            );
        }
    }

    #[test]
    fn p2_extremes_are_exact() {
        let xs = sample(3000);
        let mut lo = P2Quantile::new(0.0).unwrap();
        let mut hi = P2Quantile::new(1.0).unwrap();
        for &x in &xs {
            lo.push(x);
            hi.push(x);
        }
        assert_eq!(lo.finish().unwrap(), descriptive::min(&xs).unwrap());
        assert_eq!(hi.finish().unwrap(), descriptive::max(&xs).unwrap());
    }

    #[test]
    fn p2_invalid_p_and_merge_mismatch() {
        assert!(P2Quantile::new(1.5).is_err());
        assert!(P2Quantile::new(-0.1).is_err());
        let a = P2Quantile::new(0.5).unwrap();
        let b = P2Quantile::new(0.25).unwrap();
        let mut a2 = a.clone();
        assert!(a2.merge(b).is_err());
    }

    #[test]
    fn p2_empty_and_nonfinite() {
        let q = P2Quantile::new(0.5).unwrap();
        assert_eq!(q.finish(), Err(StatsError::EmptyInput));
        let mut q = P2Quantile::new(0.5).unwrap();
        q.push(f64::INFINITY);
        q.push(1.0);
        assert_eq!(q.finish(), Err(StatsError::NonFinite));
    }

    #[test]
    fn summary_accumulator_matches_from_slice_in_window() {
        let xs = sample(300);
        let mut acc = SummaryAccumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        let s = acc.finish().unwrap();
        let b = Summary::from_slice(&xs).unwrap();
        assert_eq!(s.n(), b.n());
        assert_eq!(s.min(), b.min());
        assert_eq!(s.max(), b.max());
        assert_eq!(s.q1(), b.q1());
        assert_eq!(s.median(), b.median());
        assert_eq!(s.q3(), b.q3());
        assert!((s.mean() - b.mean()).abs() <= 1e-9 * b.mean().abs().max(1.0));
        assert!((s.std_dev() - b.std_dev()).abs() <= 1e-9 * b.std_dev().max(1.0));
    }

    #[test]
    fn summary_accumulator_sketch_mode_close() {
        let xs = sample(4000);
        let mut acc = SummaryAccumulator::new().with_exact_window(64);
        for &x in &xs {
            acc.push(x);
        }
        let s = acc.finish().unwrap();
        let b = Summary::from_slice(&xs).unwrap();
        let range = b.range();
        for (got, want, name) in [
            (s.q1(), b.q1(), "q1"),
            (s.median(), b.median(), "median"),
            (s.q3(), b.q3(), "q3"),
        ] {
            assert!(
                (got - want).abs() <= 0.05 * range,
                "{name}: {got} vs {want}"
            );
        }
        assert_eq!(s.min(), b.min());
        assert_eq!(s.max(), b.max());
    }

    #[test]
    fn summary_accumulator_error_contract() {
        let acc = SummaryAccumulator::new();
        assert_eq!(acc.finish().unwrap_err(), StatsError::EmptyInput);
        assert_eq!(
            Summary::from_slice(&[]).unwrap_err(),
            StatsError::EmptyInput
        );
        let mut acc = SummaryAccumulator::new();
        acc.push(1.0);
        acc.push(f64::NAN);
        assert_eq!(acc.finish().unwrap_err(), StatsError::NonFinite);
        let mut one = SummaryAccumulator::new();
        one.push(7.0);
        let s = one.finish().unwrap();
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 7.0);
    }

    #[test]
    fn summary_merge_exact_shards() {
        let xs = sample(200);
        let mut whole = SummaryAccumulator::new();
        for &x in &xs {
            whole.push(x);
        }
        for shards in [2usize, 4] {
            let mut parts: Vec<SummaryAccumulator> =
                (0..shards).map(|_| SummaryAccumulator::new()).collect();
            for (i, &x) in xs.iter().enumerate() {
                parts[i % shards].push(x);
            }
            let mut merged = parts.remove(0);
            for p in parts {
                merged.merge(p);
            }
            let (a, b) = (merged.finish().unwrap(), whole.finish().unwrap());
            assert_eq!(a.median(), b.median(), "{shards} shards");
            assert_eq!(a.q1(), b.q1());
            assert_eq!(a.q3(), b.q3());
            assert_eq!((a.min(), a.max()), (b.min(), b.max()));
        }
    }

    #[test]
    fn streaming_histogram_exact_window_matches_batch() {
        let xs = sample(100);
        let mut sh = StreamingHistogram::new(32).unwrap();
        for &x in &xs {
            sh.push(x);
        }
        let h = sh.finish().unwrap();
        let b = Histogram::from_slice(&xs, 32).unwrap();
        assert_eq!(h, b);
    }

    #[test]
    fn streaming_histogram_grows_and_keeps_total() {
        let mut sh = StreamingHistogram::new(8).unwrap();
        for i in 0..1000 {
            sh.push((i * i % 7919) as f64);
        }
        // Far outside the seeded range: must grow, not drop.
        sh.push(1e6);
        sh.push(-1e6);
        let h = sh.finish().unwrap();
        assert_eq!(h.total(), 1002);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn streaming_histogram_nan_and_inf() {
        let mut sh = StreamingHistogram::new(4).unwrap();
        sh.push(f64::NAN);
        sh.push(f64::INFINITY);
        sh.push(1.0);
        assert_eq!(sh.count(), 1);
        for i in 0..100 {
            sh.push(i as f64);
        }
        let h = sh.finish().unwrap();
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 101);
    }

    #[test]
    fn streaming_histogram_merge_totals() {
        let xs = sample(600);
        let mut a = StreamingHistogram::new(16).unwrap();
        let mut b = StreamingHistogram::new(16).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(b);
        assert_eq!(a.count(), 600);
        assert_eq!(a.finish().unwrap().total(), 600);
    }

    #[test]
    fn covariance_matches_linear_fit() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0 + (x % 13.0)).collect();
        let fit = crate::regression::LinearFit::fit(&xs, &ys).unwrap();
        let mut c = Covariance::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            c.push(x, y);
        }
        assert!((c.slope().unwrap() - fit.slope()).abs() <= 1e-9 * fit.slope().abs());
        assert!((c.intercept().unwrap() - fit.intercept()).abs() <= 1e-6);
        assert!((c.r_squared().unwrap() - fit.r_squared()).abs() <= 1e-9);
    }

    #[test]
    fn covariance_error_contract_mirrors_linear_fit() {
        let c = Covariance::new();
        assert_eq!(c.slope(), Err(StatsError::EmptyInput));
        let mut c = Covariance::new();
        c.push(1.0, 2.0);
        assert!(matches!(c.slope(), Err(StatsError::InvalidParameter(_))));
        c.push(1.0, 3.0);
        assert!(matches!(c.slope(), Err(StatsError::Degenerate(_))));
        let mut c = Covariance::new();
        c.push(1.0, f64::NAN);
        c.push(2.0, 3.0);
        assert_eq!(c.slope(), Err(StatsError::NonFinite));
    }

    #[test]
    fn covariance_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..401).map(|i| (i % 97) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + ((x * 31.0) % 11.0)).collect();
        let mut whole = Covariance::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            whole.push(x, y);
        }
        let mut parts = [Covariance::new(), Covariance::new(), Covariance::new()];
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            parts[i % 3].push(x, y);
        }
        let mut merged = parts[0];
        merged.merge(parts[1]);
        merged.merge(parts[2]);
        let (sa, sb) = (merged.slope().unwrap(), whole.slope().unwrap());
        assert!((sa - sb).abs() <= 1e-9 * sb.abs().max(1.0));
        let (ra, rb) = (merged.r_squared().unwrap(), whole.r_squared().unwrap());
        assert!((ra - rb).abs() <= 1e-9);
    }
}
