//! Bootstrap confidence intervals.
//!
//! The paper reports point medians (Table 3) without uncertainty. When
//! comparing infrastructures whose medians differ by tens of
//! instructions, knowing the sampling error of those medians matters —
//! this module provides seeded percentile-bootstrap intervals for any
//! statistic, used by the reproduction's reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::check_sample;
use crate::{Result, StatsError};

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval contains `v`.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }

    /// Whether two intervals overlap (a conservative “not significantly
    /// different” check).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} [{:.3}, {:.3}] @{:.0}%",
            self.point,
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Resamples `xs` with replacement `resamples` times (seeded — fully
/// deterministic), evaluates `statistic` on each resample, and takes the
/// `(1±level)/2` percentiles of the bootstrap distribution.
///
/// # Errors
///
/// * sample-validity errors as elsewhere in this crate;
/// * [`StatsError::InvalidParameter`] unless `0 < level < 1` and
///   `resamples >= 10`;
/// * errors from `statistic` propagate.
///
/// # Examples
///
/// ```
/// use counterlab_stats::bootstrap::bootstrap_ci;
/// use counterlab_stats::quantile::median;
///
/// let data: Vec<f64> = (0..100).map(|i| (i % 13) as f64).collect();
/// let ci = bootstrap_ci(&data, median, 200, 0.95, 42).unwrap();
/// assert!(ci.contains(ci.point));
/// assert!(ci.width() < 5.0);
/// ```
pub fn bootstrap_ci(
    xs: &[f64],
    statistic: impl Fn(&[f64]) -> Result<f64>,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval> {
    check_sample(xs)?;
    if !(0.0..1.0).contains(&level) || level <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "confidence level must be in (0, 1)",
        ));
    }
    if resamples < 10 {
        return Err(StatsError::InvalidParameter(
            "bootstrap needs at least 10 resamples",
        ));
    }
    let point = statistic(xs)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = xs[rng.gen_range(0..xs.len())];
        }
        stats.push(statistic(&resample)?);
    }
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::quantile::quantile(&stats, alpha, crate::quantile::QuantileMethod::Linear)?;
    let hi =
        crate::quantile::quantile(&stats, 1.0 - alpha, crate::quantile::QuantileMethod::Linear)?;
    Ok(ConfidenceInterval {
        point,
        lo,
        hi,
        level,
    })
}

/// Convenience: bootstrap CI of the median.
///
/// # Errors
///
/// As [`bootstrap_ci`].
pub fn median_ci(xs: &[f64], resamples: usize, level: f64, seed: u64) -> Result<ConfidenceInterval> {
    bootstrap_ci(xs, crate::quantile::median, resamples, level, seed)
}

/// Convenience: bootstrap CI of the mean.
///
/// # Errors
///
/// As [`bootstrap_ci`].
pub fn mean_ci(xs: &[f64], resamples: usize, level: f64, seed: u64) -> Result<ConfidenceInterval> {
    bootstrap_ci(xs, crate::descriptive::mean, resamples, level, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread_sample() -> Vec<f64> {
        (0..200).map(|i| ((i * 7919) % 100) as f64).collect()
    }

    #[test]
    fn interval_brackets_point() {
        let ci = median_ci(&spread_sample(), 300, 0.95, 7).unwrap();
        assert!(ci.lo <= ci.point);
        assert!(ci.point <= ci.hi);
        assert!(ci.contains(ci.point));
    }

    #[test]
    fn constant_sample_zero_width() {
        let ci = median_ci(&[5.0; 50], 100, 0.95, 7).unwrap();
        assert_eq!(ci.point, 5.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn wider_level_wider_interval() {
        let xs = spread_sample();
        let narrow = mean_ci(&xs, 400, 0.80, 7).unwrap();
        let wide = mean_ci(&xs, 400, 0.99, 7).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn more_data_tighter_interval() {
        let small: Vec<f64> = (0..20).map(|i| ((i * 7919) % 100) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 100) as f64).collect();
        let ci_small = mean_ci(&small, 400, 0.95, 7).unwrap();
        let ci_large = mean_ci(&large, 400, 0.95, 7).unwrap();
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = spread_sample();
        let a = median_ci(&xs, 200, 0.95, 3).unwrap();
        let b = median_ci(&xs, 200, 0.95, 3).unwrap();
        assert_eq!(a, b);
        let c = median_ci(&xs, 200, 0.95, 4).unwrap();
        // Different seed: same point, probably different bounds.
        assert_eq!(a.point, c.point);
    }

    #[test]
    fn overlap_semantics() {
        let a = ConfidenceInterval {
            point: 1.0,
            lo: 0.0,
            hi: 2.0,
            level: 0.95,
        };
        let b = ConfidenceInterval {
            point: 3.0,
            lo: 1.5,
            hi: 4.0,
            level: 0.95,
        };
        let c = ConfidenceInterval {
            point: 9.0,
            lo: 5.0,
            hi: 10.0,
            level: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let xs = [1.0, 2.0];
        assert!(median_ci(&xs, 5, 0.95, 1).is_err());
        assert!(median_ci(&xs, 100, 0.0, 1).is_err());
        assert!(median_ci(&xs, 100, 1.0, 1).is_err());
        assert!(median_ci(&[], 100, 0.9, 1).is_err());
    }

    #[test]
    fn display_format() {
        let ci = median_ci(&[1.0, 2.0, 3.0], 50, 0.9, 1).unwrap();
        let s = ci.to_string();
        assert!(s.contains("@90%"), "{s}");
        assert!(s.contains('['), "{s}");
    }
}
