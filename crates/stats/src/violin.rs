//! Violin-plot summaries: a box plot combined with a density trace
//! (Hintze & Nelson 1998), as used by the paper's Figure 1.

use crate::boxplot::BoxPlot;
use crate::kde::Kde;
use crate::Result;

/// A violin-plot summary of a sample.
///
/// # Examples
///
/// ```
/// use counterlab_stats::violin::Violin;
///
/// let data: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
/// let v = Violin::from_slice(&data).unwrap();
/// assert_eq!(v.boxplot().n(), 200);
/// assert!(!v.trace(32).unwrap().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Violin {
    boxplot: BoxPlot,
    kde: Kde,
}

impl Violin {
    /// Builds a violin summary (box plot + Silverman-bandwidth KDE).
    ///
    /// # Errors
    ///
    /// Propagates the sample-validity errors of [`BoxPlot::from_slice`] and
    /// [`Kde::from_slice`].
    pub fn from_slice(xs: &[f64]) -> Result<Self> {
        Ok(Violin {
            boxplot: BoxPlot::from_slice(xs)?,
            kde: Kde::from_slice(xs)?,
        })
    }

    /// The box-plot component.
    pub fn boxplot(&self) -> &BoxPlot {
        &self.boxplot
    }

    /// The density component.
    pub fn kde(&self) -> &Kde {
        &self.kde
    }

    /// Density trace with `points` samples — the violin outline.
    ///
    /// # Errors
    ///
    /// As [`Kde::trace`].
    pub fn trace(&self, points: usize) -> Result<Vec<(f64, f64)>> {
        self.kde.trace(points)
    }

    /// The value with the highest estimated density along a trace of the
    /// given resolution — where the violin is widest.
    ///
    /// # Errors
    ///
    /// As [`Kde::trace`].
    pub fn mode(&self, resolution: usize) -> Result<f64> {
        let trace = self.trace(resolution)?;
        Ok(trace
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("densities are finite"))
            .map(|(x, _)| x)
            .expect("trace is non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_near_cluster() {
        let mut data = vec![];
        for i in 0..100 {
            data.push(42.0 + (i % 5) as f64 * 0.01);
        }
        data.push(0.0); // lone outlier
        let v = Violin::from_slice(&data).unwrap();
        let mode = v.mode(512).unwrap();
        assert!((mode - 42.0).abs() < 1.0, "mode = {mode}");
    }

    #[test]
    fn components_agree_on_n() {
        let data = [1.0, 2.0, 3.0];
        let v = Violin::from_slice(&data).unwrap();
        assert_eq!(v.boxplot().n(), v.kde().n());
    }

    #[test]
    fn empty_rejected() {
        assert!(Violin::from_slice(&[]).is_err());
    }
}
