//! Probability distributions needed by the analysis code: the F distribution
//! (for ANOVA p-values, §4.3 of the paper), Student's t (for regression
//! slope confidence), the normal distribution and the chi-squared
//! distribution.

use crate::special::{erf, incomplete_beta, incomplete_gamma_lower};
use crate::{Result, StatsError};

/// Fisher–Snedecor F distribution with `(d1, d2)` degrees of freedom.
///
/// # Examples
///
/// ```
/// use counterlab_stats::dist::FDistribution;
///
/// let f = FDistribution::new(3.0, 20.0).unwrap();
/// let p = f.sf(4.94).unwrap(); // Pr(F > 4.94)
/// assert!(p < 0.05 && p > 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FDistribution {
    d1: f64,
    d2: f64,
}

impl FDistribution {
    /// Creates an F distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both degrees of
    /// freedom are positive and finite.
    pub fn new(d1: f64, d2: f64) -> Result<Self> {
        if !(d1.is_finite() && d2.is_finite()) || d1 <= 0.0 || d2 <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "F distribution requires positive degrees of freedom",
            ));
        }
        Ok(FDistribution { d1, d2 })
    }

    /// Numerator degrees of freedom.
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Denominator degrees of freedom.
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// Cumulative distribution function `Pr(F <= x)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for negative or non-finite
    /// `x`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        if !x.is_finite() || x < 0.0 {
            return Err(StatsError::InvalidParameter("F cdf requires x >= 0"));
        }
        let z = self.d1 * x / (self.d1 * x + self.d2);
        incomplete_beta(z, self.d1 / 2.0, self.d2 / 2.0)
    }

    /// Survival function `Pr(F > x)` — this is R's `Pr(>F)` column in an
    /// ANOVA table.
    ///
    /// # Errors
    ///
    /// As [`FDistribution::cdf`].
    pub fn sf(&self, x: f64) -> Result<f64> {
        Ok(1.0 - self.cdf(x)?)
    }
}

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TDistribution {
    df: f64,
}

impl TDistribution {
    /// Creates a t distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `df > 0` and finite.
    pub fn new(df: f64) -> Result<Self> {
        if !df.is_finite() || df <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "t distribution requires df > 0",
            ));
        }
        Ok(TDistribution { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Cumulative distribution function `Pr(T <= x)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-finite `x`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        if !x.is_finite() {
            return Err(StatsError::InvalidParameter("t cdf requires finite x"));
        }
        let z = self.df / (self.df + x * x);
        let tail = 0.5 * incomplete_beta(z, self.df / 2.0, 0.5)?;
        Ok(if x >= 0.0 { 1.0 - tail } else { tail })
    }

    /// Two-sided p-value `Pr(|T| > |x|)`.
    ///
    /// # Errors
    ///
    /// As [`TDistribution::cdf`].
    pub fn two_sided_p(&self, x: f64) -> Result<f64> {
        let z = self.df / (self.df + x * x);
        incomplete_beta(z, self.df / 2.0, 0.5)
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalDistribution {
    mean: f64,
    sd: f64,
}

impl NormalDistribution {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `sd > 0` and both
    /// parameters are finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !(mean.is_finite() && sd.is_finite()) || sd <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "normal distribution requires finite mean and sd > 0",
            ));
        }
        Ok(NormalDistribution { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        NormalDistribution { mean: 0.0, sd: 1.0 }
    }

    /// Mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation parameter.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// Chi-squared distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `k > 0` and finite.
    pub fn new(k: f64) -> Result<Self> {
        if !k.is_finite() || k <= 0.0 {
            return Err(StatsError::InvalidParameter("chi-squared requires k > 0"));
        }
        Ok(ChiSquared { k })
    }

    /// Degrees of freedom.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Cumulative distribution function.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `x < 0`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        incomplete_gamma_lower(self.k / 2.0, x / 2.0)
    }

    /// Survival function `Pr(X > x)`.
    ///
    /// # Errors
    ///
    /// As [`ChiSquared::cdf`].
    pub fn sf(&self, x: f64) -> Result<f64> {
        Ok(1.0 - self.cdf(x)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_cdf_monotone_and_bounded() {
        let f = FDistribution::new(4.0, 30.0).unwrap();
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let c = f.cdf(x).unwrap();
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(prev > 0.99);
    }

    #[test]
    fn f_known_quantile() {
        // F(1, 10): Pr(F > 4.965) ≈ 0.05 (standard table value).
        let f = FDistribution::new(1.0, 10.0).unwrap();
        let p = f.sf(4.965).unwrap();
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
    }

    #[test]
    fn f_equals_t_squared() {
        // If T ~ t(df), then T² ~ F(1, df): two-sided t p-value == F sf.
        let t = TDistribution::new(12.0).unwrap();
        let f = FDistribution::new(1.0, 12.0).unwrap();
        for &x in &[0.5, 1.0, 2.0, 3.0] {
            let p_t = t.two_sided_p(x).unwrap();
            let p_f = f.sf(x * x).unwrap();
            assert!((p_t - p_f).abs() < 1e-9, "x={x}: {p_t} vs {p_f}");
        }
    }

    #[test]
    fn f_rejects_bad_params() {
        assert!(FDistribution::new(0.0, 5.0).is_err());
        assert!(FDistribution::new(5.0, -1.0).is_err());
        assert!(FDistribution::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn t_cdf_symmetry() {
        let t = TDistribution::new(7.0).unwrap();
        for &x in &[0.3, 1.1, 2.6] {
            let lo = t.cdf(-x).unwrap();
            let hi = t.cdf(x).unwrap();
            assert!((lo + hi - 1.0).abs() < 1e-10);
        }
        assert!((t.cdf(0.0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn t_known_quantile() {
        // t(10): Pr(|T| > 2.228) ≈ 0.05
        let t = TDistribution::new(10.0).unwrap();
        let p = t.two_sided_p(2.228).unwrap();
        assert!((p - 0.05).abs() < 2e-3, "p = {p}");
    }

    #[test]
    fn normal_cdf_landmarks() {
        let n = NormalDistribution::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((n.cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn normal_pdf_peak() {
        let n = NormalDistribution::new(2.0, 0.5).unwrap();
        assert!(n.pdf(2.0) > n.pdf(2.4));
        assert!(n.pdf(2.0) > n.pdf(1.6));
        assert!((n.pdf(2.0) - 1.0 / (0.5 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-12);
    }

    #[test]
    fn normal_rejects_bad_sd() {
        assert!(NormalDistribution::new(0.0, 0.0).is_err());
        assert!(NormalDistribution::new(0.0, -2.0).is_err());
    }

    #[test]
    fn chi_squared_known_value() {
        // χ²(2): CDF(x) = 1 - e^{-x/2}
        let c = ChiSquared::new(2.0).unwrap();
        for &x in &[0.5, 2.0, 6.0] {
            let got = c.cdf(x).unwrap();
            let want = 1.0 - (-x / 2.0).exp();
            assert!((got - want).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn chi_squared_sf_complements_cdf() {
        let c = ChiSquared::new(5.0).unwrap();
        let x = 3.3;
        assert!((c.cdf(x).unwrap() + c.sf(x).unwrap() - 1.0).abs() < 1e-12);
    }
}
