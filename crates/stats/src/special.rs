//! Special functions: log-gamma, regularized incomplete beta, and the error
//! function. These are the numerical bedrock under the F distribution used
//! by the paper's ANOVA (§4.3).
//!
//! All implementations are classical, dependency-free algorithms:
//! Lanczos approximation for `ln Γ`, Lentz's continued fraction for the
//! incomplete beta, and Abramowitz & Stegun 7.1.26 for `erf`.

use crate::{Result, StatsError};

/// Lanczos coefficients (g = 7, n = 9), good to ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `x <= 0` or non-finite `x`.
///
/// # Examples
///
/// ```
/// use counterlab_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0).unwrap() - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> Result<f64> {
    if !x.is_finite() || x <= 0.0 {
        return Err(StatsError::InvalidParameter("ln_gamma requires x > 0"));
    }
    // Reflection is unnecessary since we restrict to x > 0; use the Lanczos
    // series directly.
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    Ok(0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln())
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// # Errors
///
/// As [`ln_gamma`].
pub fn gamma(x: f64) -> Result<f64> {
    ln_gamma(x).map(f64::exp)
}

/// Natural logarithm of the beta function `B(a, b)`.
///
/// # Errors
///
/// As [`ln_gamma`] for either argument.
pub fn ln_beta(a: f64, b: f64) -> Result<f64> {
    Ok(ln_gamma(a)? + ln_gamma(b)? - ln_gamma(a + b)?)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed with the continued-fraction expansion (Numerical Recipes
/// `betacf`), using the symmetry `I_x(a,b) = 1 - I_{1-x}(b,a)` to keep the
/// fraction in its rapidly-converging region.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when `a <= 0`, `b <= 0`, or
/// `x ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use counterlab_stats::special::incomplete_beta;
/// // I_x(1, 1) is the identity.
/// assert!((incomplete_beta(0.3, 1.0, 1.0).unwrap() - 0.3).abs() < 1e-12);
/// ```
pub fn incomplete_beta(x: f64, a: f64, b: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter(
            "incomplete_beta requires x in [0, 1]",
        ));
    }
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "incomplete_beta requires a > 0 and b > 0",
        ));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let front = (x.ln() * a + (1.0 - x).ln() * b - ln_beta(a, b)?).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(x, a, b) / a)
    } else {
        Ok(1.0
            - (x.ln() * a + (1.0 - x).ln() * b - ln_beta(a, b)?).exp() * beta_cf(1.0 - x, b, a) / b)
        .map(|v: f64| v.clamp(0.0, 1.0))
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, via Abramowitz & Stegun formula 7.1.26
/// (|error| < 1.5e-7, which is ample for p-value reporting).
///
/// # Examples
///
/// ```
/// use counterlab_stats::special::erf;
/// assert!(erf(0.0).abs() < 1e-12);
/// assert!((erf(1.0) - 0.8427).abs() < 1e-3);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Regularized lower incomplete gamma function `P(a, x)`, by series expansion
/// for `x < a + 1` and continued fraction otherwise.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `a <= 0` or `x < 0`.
pub fn incomplete_gamma_lower(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "incomplete_gamma requires a > 0",
        ));
    }
    if x < 0.0 {
        return Err(StatsError::InvalidParameter(
            "incomplete_gamma requires x >= 0",
        ));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    let lg = ln_gamma(a)?;
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        Ok((sum.ln() + a * x.ln() - x - lg).exp().clamp(0.0, 1.0))
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - lg).exp() * h;
        Ok((1.0 - q).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((i + 1) as f64).unwrap();
            assert!(
                (lg - f64::ln(f)).abs() < 1e-10,
                "Γ({}) mismatch: {lg} vs {}",
                i + 1,
                f64::ln(f)
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let lg = ln_gamma(0.5).unwrap();
        assert!((lg - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_rejects_nonpositive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.0).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.5, 1.3, 2.7, 5.5] {
            let lhs = gamma(x + 1.0).unwrap();
            let rhs = x * gamma(x).unwrap();
            assert!((lhs - rhs).abs() / rhs < 1e-12, "x={x}");
        }
    }

    #[test]
    fn incomplete_beta_identity_cases() {
        assert_eq!(incomplete_beta(0.0, 2.0, 3.0).unwrap(), 0.0);
        assert_eq!(incomplete_beta(1.0, 2.0, 3.0).unwrap(), 1.0);
        // I_x(1,1) = x
        for &x in &[0.1, 0.5, 0.9] {
            assert!((incomplete_beta(x, 1.0, 1.0).unwrap() - x).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 4.5, 1.5), (0.5, 3.0, 3.0)] {
            let lhs = incomplete_beta(x, a, b).unwrap();
            let rhs = 1.0 - incomplete_beta(1.0 - x, b, a).unwrap();
            assert!((lhs - rhs).abs() < 1e-10, "x={x} a={a} b={b}");
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        assert!((incomplete_beta(0.5, 2.0, 2.0).unwrap() - 0.5).abs() < 1e-12);
        // R: pbeta(0.4, 2, 5) = 0.76672
        assert!((incomplete_beta(0.4, 2.0, 5.0).unwrap() - 0.76672).abs() < 1e-4);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.5) - 0.5205).abs() < 1e-3);
        assert!((erf(2.0) - 0.9953).abs() < 1e-3);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12, "erf is odd");
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_basics() {
        assert_eq!(incomplete_gamma_lower(1.0, 0.0).unwrap(), 0.0);
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            let p = incomplete_gamma_lower(1.0, x).unwrap();
            assert!((p - (1.0 - (-x).exp())).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..50 {
            let p = incomplete_gamma_lower(3.0, i as f64 * 0.3).unwrap();
            assert!(p >= prev);
            prev = p;
        }
        assert!(prev > 0.99);
    }
}
