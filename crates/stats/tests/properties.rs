//! Property-based tests of the statistics substrate: invariants that must
//! hold for arbitrary data.

use counterlab_stats::prelude::*;
use counterlab_stats::quantile::{quantile, QuantileMethod};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9..1e9f64, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_within_data_range(xs in finite_vec(200), p in 0.0..=1.0f64) {
        let q = quantile(&xs, p, QuantileMethod::Linear).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= lo && q <= hi);
    }

    #[test]
    fn quantiles_monotone_in_p(xs in finite_vec(100), a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let qa = quantile(&xs, a, QuantileMethod::Linear).unwrap();
        let qb = quantile(&xs, b, QuantileMethod::Linear).unwrap();
        prop_assert!(qa <= qb);
    }

    #[test]
    fn boxplot_five_numbers_ordered(xs in finite_vec(300)) {
        let bp = BoxPlot::from_slice(&xs).unwrap();
        prop_assert!(bp.lower_whisker() <= bp.q1());
        prop_assert!(bp.q1() <= bp.median());
        prop_assert!(bp.median() <= bp.q3());
        prop_assert!(bp.q3() <= bp.upper_whisker());
    }

    #[test]
    fn boxplot_outliers_beyond_whiskers(xs in finite_vec(300)) {
        let bp = BoxPlot::from_slice(&xs).unwrap();
        for &o in bp.outliers() {
            prop_assert!(o < bp.lower_whisker() || o > bp.upper_whisker());
        }
        // Outliers plus in-fence data account for every point.
        prop_assert!(bp.outliers().len() <= xs.len());
    }

    #[test]
    fn summary_consistent_with_sorted_data(xs in finite_vec(200)) {
        let s = Summary::from_slice(&xs).unwrap();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(s.min(), sorted[0]);
        prop_assert_eq!(s.max(), sorted[sorted.len() - 1]);
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
        prop_assert!(s.iqr() >= 0.0);
    }

    #[test]
    fn regression_recovers_exact_lines(
        slope in -1e3..1e3f64,
        intercept in -1e6..1e6f64,
        n in 3usize..50,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope() - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((fit.intercept() - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
        prop_assert!(fit.r_squared() > 1.0 - 1e-9);
    }

    #[test]
    fn regression_residuals_orthogonal(xs_seed in 1u64..1000, n in 5usize..60) {
        // For any data, OLS residuals sum to ~0.
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + xs_seed) * 2654435761) % 1000) as f64)
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        let resid_sum: f64 = xs.iter().zip(&ys).map(|(x, y)| y - fit.predict(*x)).sum();
        prop_assert!(resid_sum.abs() < 1e-6 * n as f64, "sum = {resid_sum}");
    }

    #[test]
    fn kde_density_nonnegative(xs in finite_vec(60), at in -1e9..1e9f64) {
        let kde = Kde::from_slice(&xs).unwrap();
        prop_assert!(kde.density(at) >= 0.0);
        prop_assert!(kde.density(at).is_finite());
    }

    #[test]
    fn f_distribution_cdf_bounds(d1 in 1.0..50.0f64, d2 in 1.0..50.0f64, x in 0.0..100.0f64) {
        let f = FDistribution::new(d1, d2).unwrap();
        let c = f.cdf(x).unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        let s = f.sf(x).unwrap();
        prop_assert!((c + s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(mean in -100.0..100.0f64, sd in 0.1..50.0f64,
                           a in -500.0..500.0f64, b in -500.0..500.0f64) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let n = NormalDistribution::new(mean, sd).unwrap();
        prop_assert!(n.cdf(a) <= n.cdf(b) + 1e-12);
    }

    #[test]
    fn histogram_conserves_counts(xs in finite_vec(500), bins in 1usize..40) {
        let h = Histogram::from_slice(&xs, bins).unwrap();
        prop_assert_eq!(
            h.total() + h.underflow() + h.overflow(),
            xs.len() as u64
        );
    }

    #[test]
    fn anova_sums_of_squares_nonnegative(
        responses in prop::collection::vec(0.0..1000.0f64, 8..64),
    ) {
        use counterlab_stats::anova::{Anova, Factor};
        let mut a = Anova::new(vec![Factor::new("g", ["a", "b"])]);
        for (i, &y) in responses.iter().enumerate() {
            a.add(&[i % 2], y).unwrap();
        }
        let t = a.run().unwrap();
        let row = &t.rows()[0];
        prop_assert!(row.sum_sq >= -1e-9);
        prop_assert!(t.residual_sum_sq() >= 0.0);
        prop_assert!(row.p_value >= 0.0 && row.p_value <= 1.0);
        // Partition: SSB + SSE ≈ SST.
        let total = row.sum_sq + t.residual_sum_sq();
        prop_assert!((total - t.total_sum_sq()).abs() <= 1e-6 * t.total_sum_sq().max(1.0));
    }

    #[test]
    fn violin_mode_within_range(xs in finite_vec(80)) {
        let v = Violin::from_slice(&xs).unwrap();
        let mode = v.mode(128).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // The mode lies within the data range padded by 3 bandwidths.
        let pad = 3.0 * v.kde().bandwidth();
        prop_assert!(mode >= lo - pad && mode <= hi + pad);
    }
}
