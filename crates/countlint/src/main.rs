//! The countlint CLI.
//!
//! ```text
//! cargo run -p countlint              # lint the workspace, text report
//! cargo run -p countlint -- --json   # byte-stable JSON report
//! cargo run -p countlint -- --list-rules
//! cargo run -p countlint -- --root some/tree
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use countlint::{lint_root, report, rules};

struct Options {
    root: PathBuf,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--root requires a path argument".to_string())?;
                opts.root = PathBuf::from(value);
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: countlint [--root <dir>] [--json] [--list-rules]

Lints every .rs file under the root (default: current directory) against
counterlab's determinism and serving-safety rules. Exits 0 when clean,
1 when violations are found, 2 on usage or I/O errors.

Suppress a finding with an inline pragma on (or directly above) the line:
  // countlint: allow(<rule>) -- <why this is sound>";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("countlint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::registry() {
            println!("{}\n    {}\n", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let outcome = match lint_root(&opts.root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("countlint: failed to scan {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = if opts.json {
        report::render_json(&outcome.findings, outcome.files_scanned, outcome.suppressed)
    } else {
        report::render_text(&outcome.findings, outcome.files_scanned, outcome.suppressed)
    };
    print!("{rendered}");

    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
