//! The countlint CLI.
//!
//! ```text
//! cargo run -p countlint                        # lint the workspace, text report
//! cargo run -p countlint -- --format json       # byte-stable JSON report
//! cargo run -p countlint -- --format github     # GitHub PR annotations
//! cargo run -p countlint -- --baseline lint-baseline.json
//! cargo run -p countlint -- --write-baseline lint-baseline.json
//! cargo run -p countlint -- --list-rules
//! cargo run -p countlint -- --root some/tree
//! ```
//!
//! Exit codes: `0` clean (or within baseline), `1` violations found (or
//! ratchet regressions when `--baseline` is given), `2` usage or I/O
//! error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use countlint::{baseline, lint_root, report, rules};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

struct Options {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.format = Format::Json,
            "--format" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--format requires text, json or github".to_string())?;
                opts.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--baseline" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--baseline requires a file argument".to_string())?;
                opts.baseline = Some(PathBuf::from(value));
            }
            "--write-baseline" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--write-baseline requires a file argument".to_string())?;
                opts.write_baseline = Some(PathBuf::from(value));
            }
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--root requires a path argument".to_string())?;
                opts.root = PathBuf::from(value);
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: countlint [--root <dir>] [--format text|json|github] \
[--baseline <file>] [--write-baseline <file>] [--list-rules]

Lints every .rs file under the root (default: current directory) against
counterlab's determinism, serving-safety and registry-drift rules. Exits
0 when clean, 1 when violations are found, 2 on usage or I/O errors.

  --format github      emit ::error workflow commands (inline PR annotations)
  --baseline <file>    ratchet mode: exit 1 only when a (file, rule) finding
                       count exceeds the committed baseline; improvements are
                       reported so the baseline can be tightened
  --write-baseline <file>
                       record the current finding counts as the new baseline
  --json               alias for --format json

Suppress a finding with an inline pragma on (or directly above) the line:
  // countlint: allow(<rule>) -- <why this is sound>
A pragma that suppresses nothing is itself a finding (unused-pragma).";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("countlint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::registry() {
            let tag = if rule.suppressible() {
                ""
            } else {
                " (unsuppressible)"
            };
            println!("{}{}\n    {}\n", rule.id(), tag, rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let outcome = match lint_root(&opts.root) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("countlint: failed to scan {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    let current = baseline::Baseline::from_findings(&outcome.findings);

    let delta = match &opts.baseline {
        Some(path) => {
            let text = match fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("countlint: cannot read baseline {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            };
            match baseline::Baseline::parse(&text) {
                Ok(base) => Some(baseline::compare(&base, &current)),
                Err(err) => {
                    eprintln!("countlint: bad baseline {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    if let Some(path) = &opts.write_baseline {
        if let Err(err) = fs::write(path, current.render()) {
            eprintln!("countlint: cannot write baseline {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    let rendered = match opts.format {
        Format::Text => {
            report::render_text(&outcome.findings, outcome.files_scanned, outcome.suppressed)
        }
        Format::Json => {
            report::render_json(&outcome.findings, outcome.files_scanned, outcome.suppressed)
        }
        Format::Github => {
            report::render_github(&outcome.findings, outcome.files_scanned, outcome.suppressed)
        }
    };
    print!("{rendered}");

    match delta {
        Some(delta) => {
            for d in &delta.regressions {
                println!(
                    "countlint: ratchet regression: {} [{}] {} finding(s) > baseline {}",
                    d.file, d.rule, d.current, d.baseline
                );
            }
            for d in &delta.improvements {
                println!(
                    "countlint: ratchet improvement: {} [{}] {} finding(s) < baseline {} \
                     (tighten with --write-baseline)",
                    d.file, d.rule, d.current, d.baseline
                );
            }
            if delta.regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
