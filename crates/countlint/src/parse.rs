//! Phase 1 of the analyzer: a brace-tree item parser over scrubbed code.
//!
//! This is deliberately *not* a Rust parser (the workspace builds offline,
//! so `syn` is off the table). It recovers exactly the structure the
//! cross-file rules need from the token stream [`crate::scan::tokens`]
//! produces over comment- and literal-scrubbed lines:
//!
//! * item **spans** (`fn` / `struct` / `enum` / `trait` / `mod` / `impl` /
//!   `match`) from head keyword to closing brace, via brace-depth
//!   bookkeeping,
//! * `enum` **variant** names with their definition lines,
//! * `impl` **trait and type names** (`impl Experiment for Fig4` →
//!   trait `Experiment`, type `Fig4`),
//! * `match` **arms**: the pattern text before each `=>` and its line,
//! * `fn` **signatures** (head tokens joined), so rules can spot
//!   guard-returning helpers (`-> MutexGuard<…>`).
//!
//! Known, accepted approximations (validated by the dogfood gate and the
//! fixture corpus): arm patterns are token text, so a `match` guard is
//! part of the "pattern"; a block-bodied arm followed by expression
//! trailers can leave garbage tokens that are discarded at the next
//! top-level `,`; heads never contain braces (true for this codebase's
//! rustfmt-formatted style).

use crate::scan::{tokens, SourceFile};

/// What kind of item a span is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Trait,
    Mod,
    Impl,
    Match,
}

/// One `match` arm: the pattern token text (joined with single spaces)
/// and the 1-based line of its `=>`.
#[derive(Debug, Clone)]
pub struct Arm {
    pub pattern: String,
    pub line: usize,
}

/// One parsed item span.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name (`fn`/`struct`/`enum`/`trait`/`mod` name; for an `impl`
    /// the *type* name, last path segment). Empty for `match`.
    pub name: String,
    /// Enclosing module path inside the file (`a::b`), empty at top level.
    pub path: String,
    /// `impl` only: the trait's last path segment, `None` when inherent.
    pub trait_name: Option<String>,
    /// 1-based line of the head keyword.
    pub line: usize,
    /// 1-based last line of the item (same as `line` for bodyless items).
    pub end_line: usize,
    /// Whether the head keyword lies in test-only code.
    pub in_test: bool,
    /// Enum only: `(variant name, 1-based line)` in definition order.
    pub variants: Vec<(String, usize)>,
    /// Match only: arms in source order.
    pub arms: Vec<Arm>,
    /// Fn only: head tokens from `fn` to the body `{`, joined with spaces.
    pub signature: String,
}

/// A token with its source position, flattened across lines.
struct Flat<'a> {
    line: usize,
    in_test: bool,
    text: &'a str,
    is_word: bool,
}

/// A head (`fn foo(...)`, `impl T for U`, …) seen but not yet attached to
/// its `{` body or terminated by `;`.
struct Pending {
    kind: ItemKind,
    line: usize,
    in_test: bool,
    toks: Vec<String>,
}

/// An open (brace-entered) item on the container stack.
struct Open {
    /// Index into the output items vec.
    item: usize,
    /// Brace depth *outside* the item's `{`; the item closes when a `}`
    /// returns the depth to this value.
    close_depth: usize,
    kind: ItemKind,
    // Enum-variant collection state.
    expect_variant: bool,
    attr_brackets: i32,
    in_attr: bool,
    // Match-arm collection state.
    collecting_pattern: bool,
    pattern: Vec<String>,
    pattern_parens: i32,
}

/// Parses every item span in `file`.
pub fn parse(file: &SourceFile) -> Vec<Item> {
    let mut flat: Vec<Flat<'_>> = Vec::new();
    for line in &file.lines {
        for t in tokens(&line.code) {
            flat.push(Flat {
                line: line.number,
                in_test: line.in_test,
                text: t.text,
                is_word: t.is_word,
            });
        }
    }

    let mut items: Vec<Item> = Vec::new();
    let mut open: Vec<Open> = Vec::new();
    // Module-path segments with the depth their body opened at.
    let mut mods: Vec<(String, usize)> = Vec::new();
    let mut depth: usize = 0;
    let mut pending: Option<Pending> = None;

    let mut i = 0;
    while i < flat.len() {
        let t = &flat[i];

        if let Some(p) = pending.as_mut() {
            match t.text {
                "{" => {
                    let p = pending.take().unwrap();
                    let idx = finish_head(&mut items, &mods, p, t.line);
                    let kind = items[idx].kind;
                    open.push(Open {
                        item: idx,
                        close_depth: depth,
                        kind,
                        expect_variant: true,
                        attr_brackets: 0,
                        in_attr: false,
                        collecting_pattern: true,
                        pattern: Vec::new(),
                        pattern_parens: 0,
                    });
                    if kind == ItemKind::Mod {
                        mods.push((items[idx].name.clone(), depth));
                    }
                    depth += 1;
                }
                ";" if p.kind != ItemKind::Match => {
                    // Bodyless item: `struct X;`, `mod m;`, trait fn decl.
                    let p = pending.take().unwrap();
                    let line = p.line;
                    finish_head(&mut items, &mods, p, line);
                }
                _ => p.toks.push(t.text.to_string()),
            }
            i += 1;
            continue;
        }

        match t.text {
            "{" => {
                if let Some(o) = open.last_mut() {
                    if o.kind == ItemKind::Match && depth == o.close_depth + 1 && o.collecting_pattern {
                        o.pattern.push("{".to_string());
                    }
                }
                depth += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                while let Some(o) = open.last() {
                    if depth <= o.close_depth {
                        items[o.item].end_line = t.line;
                        open.pop();
                    } else {
                        break;
                    }
                }
                while let Some((_, d)) = mods.last() {
                    if depth <= *d {
                        mods.pop();
                    } else {
                        break;
                    }
                }
                // A body-`}` returning to arm level ends that arm.
                if let Some(o) = open.last_mut() {
                    if o.kind == ItemKind::Match && depth == o.close_depth + 1 {
                        if o.collecting_pattern {
                            o.pattern.push("}".to_string());
                        } else {
                            o.collecting_pattern = true;
                            o.pattern.clear();
                            o.pattern_parens = 0;
                        }
                    }
                }
            }
            _ => {
                let head = head_kind(&flat, i);
                if let Some(kind) = head {
                    pending = Some(Pending {
                        kind,
                        line: t.line,
                        in_test: t.in_test,
                        toks: Vec::new(),
                    });
                } else if let Some(o) = open.last_mut() {
                    if depth == o.close_depth + 1 {
                        if o.kind == ItemKind::Enum {
                            enum_token(o, &mut items, t);
                        } else if o.kind == ItemKind::Match
                            && match_token(o, &mut items, &flat, i)
                        {
                            i += 1; // consumed the `>` of `=>`
                        }
                    }
                }
            }
        }
        i += 1;
    }

    // Unterminated pending head (EOF mid-item): drop it.
    items
}

/// Decides whether the token at `i` opens an item head.
fn head_kind(flat: &[Flat<'_>], i: usize) -> Option<ItemKind> {
    let t = &flat[i];
    if !t.is_word {
        return None;
    }
    let next_word = flat.get(i + 1).map(|n| n.is_word).unwrap_or(false);
    let prev = i.checked_sub(1).map(|j| flat[j].text);
    match t.text {
        "fn" if next_word => Some(ItemKind::Fn),
        "struct" if next_word => Some(ItemKind::Struct),
        "enum" if next_word => Some(ItemKind::Enum),
        "trait" if next_word => Some(ItemKind::Trait),
        "mod" if next_word => Some(ItemKind::Mod),
        "impl" => {
            // `impl` in type position (`-> impl Fn()`, `&impl T`,
            // `Box<impl T>`, `fn f(x: impl T)`) is not an item head.
            let type_position = matches!(
                prev,
                Some("<") | Some("(") | Some(",") | Some(":") | Some("=")
                    | Some("+") | Some("&") | Some(">") | Some("|")
            );
            if type_position {
                None
            } else {
                Some(ItemKind::Impl)
            }
        }
        "match" => {
            // `match` is a reserved keyword; `matches!` tokenizes as the
            // word `matches`, so no bang check is needed.
            if prev == Some(".") {
                None
            } else {
                Some(ItemKind::Match)
            }
        }
        _ => None,
    }
}

/// Turns a completed head into an [`Item`] and returns its index.
fn finish_head(items: &mut Vec<Item>, mods: &[(String, usize)], p: Pending, end: usize) -> usize {
    let path = mods
        .iter()
        .map(|(n, _)| n.as_str())
        .collect::<Vec<_>>()
        .join("::");
    let (name, trait_name) = match p.kind {
        ItemKind::Impl => impl_names(&p.toks),
        ItemKind::Match => (String::new(), None),
        _ => (
            p.toks.first().cloned().unwrap_or_default(),
            None,
        ),
    };
    let signature = if p.kind == ItemKind::Fn {
        format!("fn {}", p.toks.join(" "))
    } else {
        String::new()
    };
    items.push(Item {
        kind: p.kind,
        name,
        path,
        trait_name,
        line: p.line,
        end_line: end,
        in_test: p.in_test,
        variants: Vec::new(),
        arms: Vec::new(),
        signature,
    });
    items.len() - 1
}

/// Extracts `(type_name, trait_name)` from an `impl` head's tokens
/// (everything between `impl` and the body `{`).
fn impl_names(toks: &[String]) -> (String, Option<String>) {
    // Skip leading generics `<…>` right after `impl`.
    let mut start = 0;
    if toks.first().map(String::as_str) == Some("<") {
        let mut angle = 0i32;
        for (j, t) in toks.iter().enumerate() {
            match t.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        start = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // Find a `for` at angle depth 0: `impl Trait for Type`.
    let mut angle = 0i32;
    let mut for_at: Option<usize> = None;
    for (j, t) in toks.iter().enumerate().skip(start) {
        match t.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => {
                for_at = Some(j);
                break;
            }
            _ => {}
        }
    }
    match for_at {
        Some(f) => {
            let trait_name = last_path_segment(&toks[start..f]);
            let type_name = last_path_segment(&toks[f + 1..]);
            (type_name.unwrap_or_default(), trait_name)
        }
        None => (last_path_segment(&toks[start..]).unwrap_or_default(), None),
    }
}

/// The last word of the leading path in `toks` (angle-depth 0), skipping
/// `&`, `dyn`, `mut` and lifetimes: `crate :: x :: Y < 'a >` → `Y`.
fn last_path_segment(toks: &[String]) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<&str> = None;
    for t in toks {
        match t.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "dyn" | "mut" => {}
            w if angle == 0 && w.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_') => {
                last = Some(w);
            }
            _ => {}
        }
    }
    last.map(str::to_string)
}

/// Feeds one variant-level token into an open enum.
fn enum_token(o: &mut Open, items: &mut [Item], t: &Flat<'_>) {
    if o.in_attr {
        match t.text {
            "[" => o.attr_brackets += 1,
            "]" => {
                o.attr_brackets -= 1;
                if o.attr_brackets <= 0 {
                    o.in_attr = false;
                }
            }
            _ => {}
        }
        return;
    }
    match t.text {
        "#" => {
            o.in_attr = true;
            o.attr_brackets = 0;
        }
        "," => o.expect_variant = true,
        _ if o.expect_variant && t.is_word => {
            items[o.item].variants.push((t.text.to_string(), t.line));
            o.expect_variant = false;
        }
        _ => {}
    }
}

/// Feeds one arm-level token into an open match. Returns `true` when the
/// token and its successor formed `=>` and the successor was consumed.
fn match_token(o: &mut Open, items: &mut [Item], flat: &[Flat<'_>], i: usize) -> bool {
    let t = &flat[i];
    if o.collecting_pattern {
        if t.text == "=" && flat.get(i + 1).map(|n| n.text) == Some(">") {
            items[o.item].arms.push(Arm {
                pattern: o.pattern.join(" "),
                line: t.line,
            });
            o.collecting_pattern = false;
            o.pattern.clear();
            o.pattern_parens = 0;
            return true;
        }
        match t.text {
            "(" | "[" => o.pattern_parens += 1,
            ")" | "]" => o.pattern_parens -= 1,
            _ => {}
        }
        if t.text == "," && o.pattern_parens <= 0 {
            // Top-level `,` never occurs inside an arm pattern: discard
            // whatever trailer tokens accumulated and start fresh.
            o.pattern.clear();
            o.pattern_parens = 0;
        } else {
            o.pattern.push(t.text.to_string());
        }
    } else if t.text == "," {
        o.collecting_pattern = true;
        o.pattern.clear();
        o.pattern_parens = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> Vec<Item> {
        parse(&SourceFile::scan("crates/x/src/lib.rs", src))
    }

    fn find<'a>(items: &'a [Item], kind: ItemKind, name: &str) -> &'a Item {
        items
            .iter()
            .find(|i| i.kind == kind && i.name == name)
            .unwrap_or_else(|| panic!("no {kind:?} named {name}"))
    }

    #[test]
    fn fn_struct_enum_spans_and_names() {
        let src = "\
pub struct Grid;

pub enum Mode {
    Fast,
    Slow { retries: u32 },
    Counted(u64),
}

fn run(g: &Grid) -> u64 {
    let inner = || 1;
    inner()
}
";
        let items = parse_src(src);
        let s = find(&items, ItemKind::Struct, "Grid");
        assert_eq!((s.line, s.end_line), (1, 1));
        let e = find(&items, ItemKind::Enum, "Mode");
        assert_eq!((e.line, e.end_line), (3, 7));
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Fast", "Slow", "Counted"]);
        assert_eq!(e.variants[1].1, 5);
        let f = find(&items, ItemKind::Fn, "run");
        assert_eq!((f.line, f.end_line), (9, 12));
        assert!(f.signature.contains("u64"), "{}", f.signature);
    }

    #[test]
    fn enum_variants_skip_attributes_and_discriminants() {
        let src = "\
enum E {
    #[cfg(feature = \"x\")]
    A = 1,
    B(u8),
    #[doc = \"hi\"]
    C { x: u8 },
}
";
        let items = parse_src(src);
        let e = find(&items, ItemKind::Enum, "E");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn impl_trait_and_type_names() {
        let src = "\
impl Experiment for Fig4 {}
impl CellCache {}
impl<'a, T: Clone> std::fmt::Display for Wrapper<'a, T> {}
impl Iterator for &mut Walker {}
fn f() -> impl Iterator<Item = u8> { std::iter::empty() }
";
        let items = parse_src(src);
        let imps: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Impl).collect();
        assert_eq!(imps.len(), 4, "`-> impl` is not an impl head");
        assert_eq!(imps[0].trait_name.as_deref(), Some("Experiment"));
        assert_eq!(imps[0].name, "Fig4");
        assert_eq!(imps[1].trait_name, None);
        assert_eq!(imps[1].name, "CellCache");
        assert_eq!(imps[2].trait_name.as_deref(), Some("Display"));
        assert_eq!(imps[2].name, "Wrapper");
        assert_eq!(imps[3].name, "Walker");
    }

    #[test]
    fn match_arms_with_blocks_and_wildcards() {
        let src = "\
fn dispatch(v: Verb, n: u64) -> u64 {
    match v {
        Verb::Ping => 1,
        Verb::Stats { verbose } => {
            let x = n + 1;
            x
        }
        (Verb::A, Verb::B) => 2,
        _ if n > 0 => 3,
        _ => 0,
    }
}
";
        let items = parse_src(src);
        let m = items.iter().find(|i| i.kind == ItemKind::Match).unwrap();
        let pats: Vec<&str> = m.arms.iter().map(|a| a.pattern.as_str()).collect();
        assert_eq!(pats[0], "Verb : : Ping");
        assert!(pats[1].starts_with("Verb : : Stats"));
        assert!(pats[2].contains("Verb : : A"));
        assert_eq!(pats[3], "_ if n > 0");
        assert_eq!(pats[4], "_");
        assert_eq!(m.arms[4].line, 10);
        assert_eq!((m.line, m.end_line), (2, 11));
    }

    #[test]
    fn arm_after_block_bodied_arm_with_trailers_is_still_seen() {
        let src = "\
fn f(v: u8) -> u8 {
    match v {
        0 => Ok::<u8, u8>(Wrap { x: 1 }.x).unwrap_or(9),
        _ => 0,
    }
}
";
        let items = parse_src(src);
        let m = items.iter().find(|i| i.kind == ItemKind::Match).unwrap();
        assert!(
            m.arms.iter().any(|a| a.pattern.trim() == "_"),
            "wildcard arm after struct-literal body must be detected: {:?}",
            m.arms.iter().map(|a| &a.pattern).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nested_mods_give_paths_and_test_flags_carry() {
        let src = "\
mod outer {
    mod inner {
        fn deep() {}
    }
}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let items = parse_src(src);
        let f = find(&items, ItemKind::Fn, "deep");
        assert_eq!(f.path, "outer::inner");
        assert!(!f.in_test);
        let h = find(&items, ItemKind::Fn, "helper");
        assert!(h.in_test);
    }

    #[test]
    fn bodyless_items_terminate_at_semicolon() {
        let src = "\
struct Unit;
mod elsewhere;
trait T {
    fn required(&self) -> u64;
    fn provided(&self) -> u64 {
        1
    }
}
fn after() {}
";
        let items = parse_src(src);
        assert_eq!(find(&items, ItemKind::Struct, "Unit").end_line, 1);
        let t = find(&items, ItemKind::Trait, "T");
        assert_eq!((t.line, t.end_line), (3, 8));
        assert_eq!(find(&items, ItemKind::Fn, "required").end_line, 4);
        let p = find(&items, ItemKind::Fn, "provided");
        assert_eq!((p.line, p.end_line), (5, 7));
        assert!(items.iter().any(|i| i.name == "after"));
    }

    #[test]
    fn nested_match_inside_arm_body() {
        let src = "\
fn f(a: u8, b: u8) -> u8 {
    match a {
        0 => match b {
            1 => 10,
            _ => 11,
        },
        _ => 12,
    }
}
";
        let items = parse_src(src);
        let matches: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Match).collect();
        assert_eq!(matches.len(), 2);
        let outer = matches[0];
        assert!(outer.arms.iter().any(|a| a.pattern.trim() == "_" && a.line == 7));
    }
}
