//! The rule trait, the static registry, and the shipped rule set.
//!
//! Mirrors the `counterlab::experiment` registry idiom: every rule is a
//! zero-sized struct implementing [`Rule`], and [`registry`] returns the
//! fixed, ordered catalog. Rules work on scrubbed token streams (see
//! [`crate::scan`]), never on raw text, so comments and string literals
//! can never produce findings.

use crate::report::Finding;
use crate::scan::{Line, SourceFile};

/// One enforceable invariant.
///
/// Implementations are stateless; `check` receives a scanned file and
/// returns raw findings (suppression is applied by the driver, so a rule
/// never needs to know about pragmas).
pub trait Rule: Sync {
    /// Stable kebab-case id — the name pragmas and reports use.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and reports.
    fn summary(&self) -> &'static str;
    /// Why the rule exists, in terms of the laboratory's invariants.
    fn rationale(&self) -> &'static str;
    /// Whether the rule inspects the file at this repo-relative path.
    fn applies_to(&self, path: &str) -> bool;
    /// Scans the file and returns every violation.
    fn check(&self, file: &SourceFile) -> Vec<Finding>;
}

/// The fixed rule catalog, in reporting order.
pub fn registry() -> &'static [&'static dyn Rule] {
    &[
        &NondeterministicIteration,
        &WallClockInCore,
        &PanicInServingPath,
        &UndocumentedRelaxedAtomic,
        &LossyCastInWire,
        &PragmaHygiene,
    ]
}

/// Looks a rule up by id.
pub fn find(id: &str) -> Option<&'static dyn Rule> {
    registry().iter().copied().find(|r| r.id() == id)
}

// ---------------------------------------------------------------------------
// Tokenization helpers
// ---------------------------------------------------------------------------

/// One lexical token of a scrubbed code line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// The token text (an identifier/number word, or one punct char).
    pub text: &'a str,
    /// Whether the token is a word (identifier, keyword or number).
    pub is_word: bool,
}

/// Splits one scrubbed code line into word and punctuation tokens.
pub fn tokens(code: &str) -> Vec<Tok<'_>> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Tok {
                text: &code[start..i],
                is_word: true,
            });
        } else {
            out.push(Tok {
                text: &code[i..i + 1],
                is_word: false,
            });
            i += 1;
        }
    }
    out
}

/// Keywords that can legitimately precede `[` without the bracket being
/// an indexing expression (slice patterns, array types after `=`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "dyn", "for",
    "while", "loop", "where", "break", "continue", "unsafe", "pub", "const", "static", "impl",
    "fn", "use", "struct", "enum", "type", "trait", "mod", "box", "yield",
];

/// Whether the `[` at token index `i` opens an indexing expression: the
/// previous token is a value-producing word or a closing bracket, and not
/// a macro bang, attribute hash or keyword.
fn bracket_is_indexing(toks: &[Tok<'_>], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|j| toks[j]) else {
        return false;
    };
    if prev.is_word {
        !NON_INDEX_KEYWORDS.contains(&prev.text)
    } else {
        matches!(prev.text, ")" | "]" | "?")
    }
}

/// Whether token `i` is the method name of a `.name(…)` call.
fn is_method_call(toks: &[Tok<'_>], i: usize, name: &str) -> bool {
    toks[i].text == name
        && i >= 1
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
}

/// Whether token `i` is a `name!` macro invocation head.
fn is_macro_bang(toks: &[Tok<'_>], i: usize, name: &str) -> bool {
    toks[i].text == name && toks.get(i + 1).is_some_and(|t| t.text == "!")
}

/// Runs `per_line` over every non-test code line the rule applies to.
fn scan_lines(
    file: &SourceFile,
    rule: &'static str,
    mut per_line: impl FnMut(&Line, &[Tok<'_>], &mut Vec<Finding>),
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for line in &file.lines {
        if line.in_test || !line.has_code() {
            continue;
        }
        let toks = tokens(&line.code);
        per_line(line, &toks, &mut findings);
    }
    let _ = rule;
    findings
}

fn finding(file: &SourceFile, rule: &'static str, line: usize, message: String) -> Finding {
    Finding {
        file: file.path.clone(),
        line,
        rule: rule.to_string(),
        message,
    }
}

// ---------------------------------------------------------------------------
// nondeterministic-iteration
// ---------------------------------------------------------------------------

/// Forbids `HashMap`/`HashSet` in result-producing code.
pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn id(&self) -> &'static str {
        "nondeterministic-iteration"
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet in result-producing code: iteration order is nondeterministic"
    }
    fn rationale(&self) -> &'static str {
        "Every run must be a pure, bit-exact function of (machine config, infra, pattern, \
         benchmark, seed); the serve cache and the reseed plumbing both depend on it. One \
         HashMap iteration in a result-producing path silently breaks byte-identity across \
         processes (RandomState is per-process), which poisons cached results served to many \
         clients. Use BTreeMap/BTreeSet or key-sorted access; pragma-justify containers that \
         are provably never iterated for output."
    }
    fn applies_to(&self, _path: &str) -> bool {
        true
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_lines(file, self.id(), |line, toks, out| {
            for t in toks {
                if t.is_word && (t.text == "HashMap" || t.text == "HashSet") {
                    out.push(finding(
                        file,
                        self.id(),
                        line.number,
                        format!(
                            "{} has nondeterministic iteration order; use BTreeMap/BTreeSet \
                             or an order-stable structure",
                            t.text
                        ),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// wall-clock-in-core
// ---------------------------------------------------------------------------

/// Forbids wall-clock reads outside the bench crate and the shims.
pub struct WallClockInCore;

impl Rule for WallClockInCore {
    fn id(&self) -> &'static str {
        "wall-clock-in-core"
    }
    fn summary(&self) -> &'static str {
        "Instant/SystemTime outside the bench crate"
    }
    fn rationale(&self) -> &'static str {
        "The paper's central lesson is that measurement infrastructure perturbs the quantity \
         being measured. Simulated time (cycle counts, seeded timers) is the only clock the \
         core may consult: a wall-clock read makes output depend on host scheduling, which \
         breaks bit-exact replay and cache correctness. Timing belongs in counterlab-bench \
         (the harness that measures the laboratory itself) and in the criterion shim."
    }
    fn applies_to(&self, path: &str) -> bool {
        !path.starts_with("crates/bench/") && !path.starts_with("shims/")
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_lines(file, self.id(), |line, toks, out| {
            for t in toks {
                if t.is_word && (t.text == "Instant" || t.text == "SystemTime") {
                    out.push(finding(
                        file,
                        self.id(),
                        line.number,
                        format!(
                            "{} is a wall-clock read; core results must be pure functions \
                             of their seeds",
                            t.text
                        ),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// panic-in-serving-path
// ---------------------------------------------------------------------------

/// Serving-path modules of the core crate: code executed by countd
/// worker threads while a client waits. A panic here kills in-flight
/// requests.
const SERVING_PATH_FILES: &[&str] = &[
    "crates/core/src/serve.rs",
    "crates/core/src/wire.rs",
    "crates/core/src/exec.rs",
    "crates/core/src/grid.rs",
    "crates/core/src/measure.rs",
];

/// Forbids panicking constructs in the serving path.
pub struct PanicInServingPath;

impl Rule for PanicInServingPath {
    fn id(&self) -> &'static str {
        "panic-in-serving-path"
    }
    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/indexing in non-test serve, wire, exec, grid or measure code"
    }
    fn rationale(&self) -> &'static str {
        "countd's worker threads run this code while clients wait on open sockets; a panic \
         kills the worker and every in-flight request it would have served. Convert to typed \
         errors (the daemon already reports CoreError over the wire), use .get()/slice \
         patterns instead of indexing, and pragma-justify the few sites where aborting is \
         provably the correct response (e.g. propagating a worker panic at join)."
    }
    fn applies_to(&self, path: &str) -> bool {
        SERVING_PATH_FILES.contains(&path)
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_lines(file, self.id(), |line, toks, out| {
            let mut push = |what: &str| {
                out.push(finding(
                    file,
                    self.id(),
                    line.number,
                    format!("{what} can panic in the serving path; return a typed error or \
                             justify with a pragma"),
                ));
            };
            for (i, t) in toks.iter().enumerate() {
                if t.is_word {
                    if is_method_call(toks, i, "unwrap") || is_method_call(toks, i, "expect") {
                        push(&format!(".{}()", t.text));
                    } else if is_macro_bang(toks, i, "panic")
                        || is_macro_bang(toks, i, "unreachable")
                        || is_macro_bang(toks, i, "todo")
                        || is_macro_bang(toks, i, "unimplemented")
                    {
                        push(&format!("{}!", t.text));
                    }
                } else if t.text == "[" && bracket_is_indexing(toks, i) {
                    push("slice/array indexing");
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// undocumented-relaxed-atomic
// ---------------------------------------------------------------------------

/// Requires a justification pragma on every `Ordering::Relaxed`.
pub struct UndocumentedRelaxedAtomic;

impl Rule for UndocumentedRelaxedAtomic {
    fn id(&self) -> &'static str {
        "undocumented-relaxed-atomic"
    }
    fn summary(&self) -> &'static str {
        "Ordering::Relaxed without a pragma stating the soundness argument"
    }
    fn rationale(&self) -> &'static str {
        "Relaxed is usually right for independent counters and usually wrong for anything \
         that publishes data between threads — and the difference is invisible at the call \
         site. This rule makes the argument part of the code: every Relaxed needs a \
         `countlint: allow` pragma whose reason states why no cross-thread ordering is \
         required (the pragma is the documentation; there is no way to satisfy the rule \
         silently)."
    }
    fn applies_to(&self, _path: &str) -> bool {
        true
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_lines(file, self.id(), |line, toks, out| {
            for t in toks {
                if t.is_word && t.text == "Relaxed" {
                    out.push(finding(
                        file,
                        self.id(),
                        line.number,
                        "Ordering::Relaxed requires a pragma documenting why relaxed \
                         ordering is sound here"
                            .to_string(),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// lossy-cast-in-wire
// ---------------------------------------------------------------------------

/// Numeric type names an `as` cast can silently truncate to.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64",
];

/// Forbids numeric `as` casts in the wire codecs and the server.
pub struct LossyCastInWire;

impl Rule for LossyCastInWire {
    fn id(&self) -> &'static str {
        "lossy-cast-in-wire"
    }
    fn summary(&self) -> &'static str {
        "numeric `as` cast in the COUNTD/1 codecs or the server"
    }
    fn rationale(&self) -> &'static str {
        "Wire values cross a trust boundary: a lossy `as` cast turns a hostile or corrupt \
         count into a silently wrong small number instead of a rejected message, and a \
         wrong count can misframe every byte that follows. Codecs must use checked \
         try_from conversions that reject with a typed WireError."
    }
    fn applies_to(&self, path: &str) -> bool {
        path == "crates/core/src/wire.rs" || path == "crates/core/src/serve.rs"
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_lines(file, self.id(), |line, toks, out| {
            for (i, t) in toks.iter().enumerate() {
                if t.is_word
                    && t.text == "as"
                    && toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_word && NUMERIC_TYPES.contains(&n.text))
                {
                    out.push(finding(
                        file,
                        self.id(),
                        line.number,
                        format!(
                            "`as {}` can silently truncate a wire value; use a checked \
                             try_from returning WireError",
                            toks[i + 1].text
                        ),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// pragma hygiene (meta rule)
// ---------------------------------------------------------------------------

/// Rejects malformed pragmas and pragmas naming unknown rules.
///
/// Findings of this rule cannot themselves be suppressed: a broken
/// suppression must never silence anything.
pub struct PragmaHygiene;

impl PragmaHygiene {
    /// The id, exposed so the driver can refuse to suppress it.
    pub const ID: &'static str = "malformed-pragma";
}

impl Rule for PragmaHygiene {
    fn id(&self) -> &'static str {
        Self::ID
    }
    fn summary(&self) -> &'static str {
        "countlint pragma that is malformed or names an unknown rule"
    }
    fn rationale(&self) -> &'static str {
        "A suppression that silently fails to parse would leave its author believing an \
         invariant is waived when it is not (or worse, believing a violation is justified \
         when the justification was never recorded). Malformed pragmas are violations \
         themselves and cannot be suppressed."
    }
    fn applies_to(&self, _path: &str) -> bool {
        true
    }
    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for bad in &file.bad_pragmas {
            out.push(finding(
                file,
                Self::ID,
                bad.line,
                format!("malformed countlint pragma: {}", bad.problem),
            ));
        }
        for pragma in &file.pragmas {
            if find(&pragma.rule).is_none() {
                out.push(finding(
                    file,
                    Self::ID,
                    pragma.line,
                    format!("pragma names unknown rule `{}`", pragma.rule),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in registry() {
            assert!(seen.insert(rule.id()), "duplicate id {}", rule.id());
            assert!(
                rule.id()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                rule.id()
            );
            assert!(!rule.summary().is_empty());
            assert!(!rule.rationale().is_empty());
        }
        assert!(find("nondeterministic-iteration").is_some());
        assert!(find("no-such-rule").is_none());
    }

    #[test]
    fn tokenizer_splits_words_and_punct() {
        let toks = tokens("a.b[0] += vec![1];");
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(
            texts,
            ["a", ".", "b", "[", "0", "]", "+", "=", "vec", "!", "[", "1", "]", ";"]
        );
    }

    #[test]
    fn indexing_detection_distinguishes_contexts() {
        let cases = [
            ("fields[0]", true),
            ("x.y[i]", true),
            ("f(x)[1]", true),
            ("a[0][1]", true),
            ("vec![1, 2]", false),
            ("#[cfg(test)]", false),
            ("let [a, b] = pair;", false),
            ("let b = [0u8; 1];", false),
            ("fn f(x: [u64; 2]) {}", false),
            ("&[1, 2, 3]", false),
            ("matches!(x, [_, _])", false),
        ];
        for (src, expect) in cases {
            let toks = tokens(src);
            let got = toks
                .iter()
                .enumerate()
                .any(|(i, t)| t.text == "[" && bracket_is_indexing(&toks, i));
            assert_eq!(got, expect, "{src:?}");
        }
    }

    fn check_one(rule: &dyn Rule, path: &str, src: &str) -> Vec<Finding> {
        rule.check(&SourceFile::scan(path, src))
    }

    #[test]
    fn each_rule_fires_on_its_target() {
        let p = "crates/core/src/serve.rs";
        assert_eq!(
            check_one(&NondeterministicIteration, p, "use std::collections::HashMap;\n").len(),
            1
        );
        assert_eq!(
            check_one(&WallClockInCore, p, "let t = Instant::now();\n").len(),
            1
        );
        assert_eq!(
            check_one(
                &PanicInServingPath,
                p,
                "x.unwrap(); y.expect(\"m\"); panic!(\"b\"); let v = a[0];\n"
            )
            .len(),
            4
        );
        assert_eq!(
            check_one(&UndocumentedRelaxedAtomic, p, "c.load(Ordering::Relaxed);\n").len(),
            1
        );
        assert_eq!(
            check_one(&LossyCastInWire, p, "let n = big as usize;\n").len(),
            1
        );
    }

    #[test]
    fn rules_ignore_tests_comments_and_strings() {
        let src = "\
// Instant and HashMap in a comment.
let s = \"Instant HashMap Relaxed x.unwrap()\";
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn f() { x.unwrap(); let t = Instant::now(); }
}
";
        let p = "crates/core/src/serve.rs";
        for rule in registry() {
            assert!(
                rule.check(&SourceFile::scan(p, src)).is_empty(),
                "{} fired",
                rule.id()
            );
        }
    }

    #[test]
    fn scoping_is_per_rule() {
        assert!(WallClockInCore.applies_to("crates/core/src/grid.rs"));
        assert!(!WallClockInCore.applies_to("crates/bench/src/bin/repro/bench.rs"));
        assert!(!WallClockInCore.applies_to("shims/criterion/src/lib.rs"));
        assert!(PanicInServingPath.applies_to("crates/core/src/wire.rs"));
        assert!(!PanicInServingPath.applies_to("crates/core/src/report.rs"));
        assert!(LossyCastInWire.applies_to("crates/core/src/wire.rs"));
        assert!(!LossyCastInWire.applies_to("crates/core/src/grid.rs"));
        assert!(UndocumentedRelaxedAtomic.applies_to("crates/bench/src/bin/repro/bench.rs"));
    }

    #[test]
    fn use_as_rename_is_not_a_cast() {
        let src = "use foo::bar as baz;\n";
        assert!(check_one(&LossyCastInWire, "crates/core/src/wire.rs", src).is_empty());
    }

    #[test]
    fn pragma_hygiene_flags_unknown_rules_and_bad_syntax() {
        let src = "\
// countlint: allow(not-a-rule) -- reason
// countlint: allow(missing-reason)
let x = 1;
";
        let findings = check_one(&PragmaHygiene, "crates/core/src/lib.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.message.contains("unknown rule")));
        assert!(findings.iter().any(|f| f.message.contains("missing")));
    }
}
