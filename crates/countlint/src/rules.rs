//! The rule trait, the static registry, and the shipped rule set.
//!
//! Mirrors the `counterlab::experiment` registry idiom: every rule is a
//! zero-sized struct implementing [`Rule`], and [`registry`] returns the
//! fixed, ordered catalog. Since v2, rules check a whole [`Workspace`]
//! (the symbol graph from [`crate::symbols`]) rather than one file at a
//! time, so cross-file invariants — registry membership, enum/wire
//! parity, lock discipline — are first-class. Rules still work on
//! scrubbed token streams (see [`crate::scan`]), never on raw text, so
//! comments and string literals can never produce findings.

use crate::report::Finding;
use crate::scan::{Line, SourceFile};
use crate::symbols::{line_has_seq, Workspace, WsFile};
use std::collections::BTreeSet;

pub use crate::scan::{tokens, Tok};

/// One enforceable invariant.
///
/// Implementations are stateless; `check` receives the workspace symbol
/// graph and returns raw findings (suppression is applied by the driver,
/// so a rule never needs to know about pragmas).
pub trait Rule: Sync {
    /// Stable kebab-case id — the name pragmas and reports use.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and reports.
    fn summary(&self) -> &'static str;
    /// Why the rule exists, in terms of the laboratory's invariants.
    fn rationale(&self) -> &'static str;
    /// Whether findings of this rule may be silenced by a pragma.
    /// Meta-rules about the suppression machinery itself say no.
    fn suppressible(&self) -> bool {
        true
    }
    /// Scans the workspace and returns every violation.
    fn check(&self, ws: &Workspace) -> Vec<Finding>;
}

/// The fixed rule catalog, in reporting order.
pub fn registry() -> &'static [&'static dyn Rule] {
    &[
        &NondeterministicIteration,
        &WallClockInCore,
        &PanicInServingPath,
        &UndocumentedRelaxedAtomic,
        &LossyCastInWire,
        &UnregisteredExperiment,
        &EnumWireDrift,
        &NestedLockInServe,
        &UnboundedStreamInServe,
        &UnusedPragma,
        &PragmaHygiene,
    ]
}

/// Looks a rule up by id.
pub fn find(id: &str) -> Option<&'static dyn Rule> {
    registry().iter().copied().find(|r| r.id() == id)
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Keywords that can legitimately precede `[` without the bracket being
/// an indexing expression (slice patterns, array types after `=`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "dyn", "for",
    "while", "loop", "where", "break", "continue", "unsafe", "pub", "const", "static", "impl",
    "fn", "use", "struct", "enum", "type", "trait", "mod", "box", "yield",
];

/// Whether the `[` at token index `i` opens an indexing expression: the
/// previous token is a value-producing word or a closing bracket, and not
/// a macro bang, attribute hash or keyword.
fn bracket_is_indexing(toks: &[Tok<'_>], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|j| toks[j]) else {
        return false;
    };
    if prev.is_word {
        !NON_INDEX_KEYWORDS.contains(&prev.text)
    } else {
        matches!(prev.text, ")" | "]" | "?")
    }
}

/// Whether token `i` is the method name of a `.name(…)` call.
fn is_method_call(toks: &[Tok<'_>], i: usize, name: &str) -> bool {
    toks[i].text == name
        && i >= 1
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
}

/// Whether token `i` is a `name!` macro invocation head.
fn is_macro_bang(toks: &[Tok<'_>], i: usize, name: &str) -> bool {
    toks[i].text == name && toks.get(i + 1).is_some_and(|t| t.text == "!")
}

/// Runs `per_line` over every non-test code line of every file whose
/// path satisfies `applies`.
fn scan_ws(
    ws: &Workspace,
    applies: impl Fn(&str) -> bool,
    mut per_line: impl FnMut(&SourceFile, &Line, &[Tok<'_>], &mut Vec<Finding>),
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for wf in ws.files() {
        if !applies(&wf.source.path) {
            continue;
        }
        for line in &wf.source.lines {
            if line.in_test || !line.has_code() {
                continue;
            }
            let toks = tokens(&line.code);
            per_line(&wf.source, line, &toks, &mut findings);
        }
    }
    findings
}

fn finding(path: &str, rule: &'static str, line: usize, message: String) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        rule: rule.to_string(),
        message,
    }
}

// Serving-path geography, shared by several rules.
const SERVE_FILE: &str = "crates/core/src/serve.rs";
const WIRE_FILE: &str = "crates/core/src/wire.rs";
const BENCHMARK_FILE: &str = "crates/core/src/benchmark.rs";
const REGISTRY_FILE: &str = "crates/core/src/experiment.rs";

// ---------------------------------------------------------------------------
// nondeterministic-iteration
// ---------------------------------------------------------------------------

/// Forbids `HashMap`/`HashSet` in result-producing code.
pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn id(&self) -> &'static str {
        "nondeterministic-iteration"
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet in result-producing code: iteration order is nondeterministic"
    }
    fn rationale(&self) -> &'static str {
        "Every run must be a pure, bit-exact function of (machine config, infra, pattern, \
         benchmark, seed); the serve cache and the reseed plumbing both depend on it. One \
         HashMap iteration in a result-producing path silently breaks byte-identity across \
         processes (RandomState is per-process), which poisons cached results served to many \
         clients. Use BTreeMap/BTreeSet or key-sorted access; pragma-justify containers that \
         are provably never iterated for output."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        scan_ws(ws, |_| true, |file, line, toks, out| {
            for t in toks {
                if t.is_word && (t.text == "HashMap" || t.text == "HashSet") {
                    out.push(finding(
                        &file.path,
                        self.id(),
                        line.number,
                        format!(
                            "{} has nondeterministic iteration order; use BTreeMap/BTreeSet \
                             or an order-stable structure",
                            t.text
                        ),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// wall-clock-in-core
// ---------------------------------------------------------------------------

/// Forbids wall-clock reads outside the bench crate and the shims.
pub struct WallClockInCore;

impl Rule for WallClockInCore {
    fn id(&self) -> &'static str {
        "wall-clock-in-core"
    }
    fn summary(&self) -> &'static str {
        "Instant/SystemTime outside the bench crate"
    }
    fn rationale(&self) -> &'static str {
        "The paper's central lesson is that measurement infrastructure perturbs the quantity \
         being measured. Simulated time (cycle counts, seeded timers) is the only clock the \
         core may consult: a wall-clock read makes output depend on host scheduling, which \
         breaks bit-exact replay and cache correctness. Timing belongs in counterlab-bench \
         (the harness that measures the laboratory itself) and in the criterion shim."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let applies =
            |path: &str| !path.starts_with("crates/bench/") && !path.starts_with("shims/");
        scan_ws(ws, applies, |file, line, toks, out| {
            for t in toks {
                if t.is_word && (t.text == "Instant" || t.text == "SystemTime") {
                    out.push(finding(
                        &file.path,
                        self.id(),
                        line.number,
                        format!(
                            "{} is a wall-clock read; core results must be pure functions \
                             of their seeds",
                            t.text
                        ),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// panic-in-serving-path
// ---------------------------------------------------------------------------

/// Serving-path modules of the core crate: code executed by countd
/// worker threads while a client waits. A panic here kills in-flight
/// requests.
const SERVING_PATH_FILES: &[&str] = &[
    SERVE_FILE,
    WIRE_FILE,
    "crates/core/src/exec.rs",
    "crates/core/src/grid.rs",
    "crates/core/src/measure.rs",
];

/// Forbids panicking constructs in the serving path.
pub struct PanicInServingPath;

impl Rule for PanicInServingPath {
    fn id(&self) -> &'static str {
        "panic-in-serving-path"
    }
    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/indexing in non-test serve, wire, exec, grid or measure code"
    }
    fn rationale(&self) -> &'static str {
        "countd's worker threads run this code while clients wait on open sockets; a panic \
         kills the worker and every in-flight request it would have served. Convert to typed \
         errors (the daemon already reports CoreError over the wire), use .get()/slice \
         patterns instead of indexing, and pragma-justify the few sites where aborting is \
         provably the correct response (e.g. propagating a worker panic at join)."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let applies = |path: &str| SERVING_PATH_FILES.contains(&path);
        scan_ws(ws, applies, |file, line, toks, out| {
            let mut push = |what: &str| {
                out.push(finding(
                    &file.path,
                    self.id(),
                    line.number,
                    format!(
                        "{what} can panic in the serving path; return a typed error or \
                         justify with a pragma"
                    ),
                ));
            };
            for (i, t) in toks.iter().enumerate() {
                if t.is_word {
                    if is_method_call(toks, i, "unwrap") || is_method_call(toks, i, "expect") {
                        push(&format!(".{}()", t.text));
                    } else if is_macro_bang(toks, i, "panic")
                        || is_macro_bang(toks, i, "unreachable")
                        || is_macro_bang(toks, i, "todo")
                        || is_macro_bang(toks, i, "unimplemented")
                    {
                        push(&format!("{}!", t.text));
                    }
                } else if t.text == "[" && bracket_is_indexing(toks, i) {
                    push("slice/array indexing");
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// undocumented-relaxed-atomic
// ---------------------------------------------------------------------------

/// Requires a justification pragma on every `Ordering::Relaxed`.
pub struct UndocumentedRelaxedAtomic;

impl Rule for UndocumentedRelaxedAtomic {
    fn id(&self) -> &'static str {
        "undocumented-relaxed-atomic"
    }
    fn summary(&self) -> &'static str {
        "Ordering::Relaxed without a pragma stating the soundness argument"
    }
    fn rationale(&self) -> &'static str {
        "Relaxed is usually right for independent counters and usually wrong for anything \
         that publishes data between threads — and the difference is invisible at the call \
         site. This rule makes the argument part of the code: every Relaxed needs a \
         `countlint: allow` pragma whose reason states why no cross-thread ordering is \
         required (the pragma is the documentation; there is no way to satisfy the rule \
         silently)."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        scan_ws(ws, |_| true, |file, line, toks, out| {
            for t in toks {
                if t.is_word && t.text == "Relaxed" {
                    out.push(finding(
                        &file.path,
                        self.id(),
                        line.number,
                        "Ordering::Relaxed requires a pragma documenting why relaxed \
                         ordering is sound here"
                            .to_string(),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// lossy-cast-in-wire
// ---------------------------------------------------------------------------

/// Numeric type names an `as` cast can silently truncate to.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64",
];

/// Forbids numeric `as` casts in the wire codecs and the server.
pub struct LossyCastInWire;

impl Rule for LossyCastInWire {
    fn id(&self) -> &'static str {
        "lossy-cast-in-wire"
    }
    fn summary(&self) -> &'static str {
        "numeric `as` cast in the COUNTD/1 codecs or the server"
    }
    fn rationale(&self) -> &'static str {
        "Wire values cross a trust boundary: a lossy `as` cast turns a hostile or corrupt \
         count into a silently wrong small number instead of a rejected message, and a \
         wrong count can misframe every byte that follows. Codecs must use checked \
         try_from conversions that reject with a typed WireError."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let applies = |path: &str| path == WIRE_FILE || path == SERVE_FILE;
        scan_ws(ws, applies, |file, line, toks, out| {
            for (i, t) in toks.iter().enumerate() {
                if t.is_word
                    && t.text == "as"
                    && toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_word && NUMERIC_TYPES.contains(&n.text))
                {
                    out.push(finding(
                        &file.path,
                        self.id(),
                        line.number,
                        format!(
                            "`as {}` can silently truncate a wire value; use a checked \
                             try_from returning WireError",
                            toks[i + 1].text
                        ),
                    ));
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// unregistered-experiment
// ---------------------------------------------------------------------------

/// Every `impl Experiment for T` must appear in `experiments::registry()`.
pub struct UnregisteredExperiment;

impl Rule for UnregisteredExperiment {
    fn id(&self) -> &'static str {
        "unregistered-experiment"
    }
    fn summary(&self) -> &'static str {
        "impl Experiment for a type that experiments::registry() does not list"
    }
    fn rationale(&self) -> &'static str {
        "The registry is the only dispatch surface: the CLI, countd's EXPERIMENT verb and \
         the ablation map all walk experiments::registry(). An Experiment impl missing from \
         it compiles cleanly, passes its unit tests, and is silently unreachable from every \
         entry point — the exact registry/zoo drift PR 8 multiplied the surface for. The \
         symbol graph sees both sides, so the gap is now a lint, not an integration-test \
         surprise."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let Some(rf) = ws.file(REGISTRY_FILE) else {
            // Single-file lints (fixtures) without the registry in view
            // have nothing to check against.
            return Vec::new();
        };
        let Some(reg) = rf.fn_named("registry") else {
            return Vec::new();
        };
        // Type names mentioned in the registry body: uppercase-initial
        // words preceded by `::` (path entries) or `&` (direct refs).
        let mut registered: BTreeSet<String> = BTreeSet::new();
        for line in &rf.source.lines {
            if line.in_test || line.number < reg.line || line.number > reg.end_line {
                continue;
            }
            let toks = tokens(&line.code);
            for (i, t) in toks.iter().enumerate() {
                let uppercase_word =
                    t.is_word && t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                let path_entry = i > 0 && matches!(toks[i - 1].text, ":" | "&");
                if uppercase_word && path_entry {
                    registered.insert(t.text.to_string());
                }
            }
        }
        let mut out = Vec::new();
        for (wf, imp) in ws.impls_of("Experiment") {
            if !registered.contains(&imp.name) {
                out.push(finding(
                    &wf.source.path,
                    self.id(),
                    imp.line,
                    format!(
                        "impl Experiment for {} is not listed in experiments::registry(); \
                         it is unreachable from the CLI, countd and the ablation map",
                        imp.name
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// enum-wire-drift
// ---------------------------------------------------------------------------

/// Keeps hand-maintained enum surfaces (wire parse arms, oracle-table
/// rows, `ALL` rosters) in lockstep with their enum definitions, and
/// flags wildcard `_` arms that would swallow future variants in the
/// wire/serve dispatch code.
pub struct EnumWireDrift;

impl EnumWireDrift {
    /// Whether `wf` documents `name` as an oracle-table row: a doc-comment
    /// line shaped `| \`name\` | …`.
    fn has_oracle_row(wf: &WsFile, name: &str) -> bool {
        let want = format!("`{name}`");
        wf.source.lines.iter().any(|l| {
            let c = l
                .comment
                .trim_start()
                .trim_start_matches(['!', '/', '*'])
                .trim_start();
            c.starts_with('|') && c.contains(&want)
        })
    }

    /// The `[start, end]` line span of `const ALL: [Name; N] = [ … ];` in
    /// `wf`, if the file declares a roster for the enum.
    fn roster_span(wf: &WsFile, name: &str) -> Option<(usize, usize)> {
        let start = wf.find_token_seq(&["ALL", ":", "[", name])?;
        let end = wf
            .source
            .lines
            .iter()
            .filter(|l| l.number > start)
            .find(|l| line_has_seq(&l.code, &["]", ";"]))
            .map(|l| l.number)
            .unwrap_or(start);
        Some((start, end))
    }
}

impl Rule for EnumWireDrift {
    fn id(&self) -> &'static str {
        "enum-wire-drift"
    }
    fn summary(&self) -> &'static str {
        "enum variant missing from wire.rs, the oracle table or an ALL roster; or a \
         wildcard arm hiding such drift"
    }
    fn rationale(&self) -> &'static str {
        "Adding a Benchmark variant takes edits in three places that the compiler cannot \
         connect: the enum, the wire parse arm, and the oracle-table doc. Rosters \
         (`const ALL`) are the same trap one file earlier. A missed edit ships a workload \
         that exists but cannot be requested, or a roster walk that silently skips it — the \
         per-event drift the paper measures, recreated in our own registries. Wildcard `_` \
         arms in wire/serve make the drift permanent by turning 'non-exhaustive match' from \
         a compile error into silent acceptance, so they are flagged too."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();

        // (a)+(b): every Benchmark variant needs a wire parse arm and an
        // oracle-table row.
        if let (Some(bf), Some(wiref)) = (ws.file(BENCHMARK_FILE), ws.file(WIRE_FILE)) {
            if let Some(be) = bf.enum_named("Benchmark") {
                for (variant, line) in &be.variants {
                    if wiref
                        .find_token_seq(&["Benchmark", ":", ":", variant])
                        .is_none()
                    {
                        out.push(finding(
                            &bf.source.path,
                            self.id(),
                            *line,
                            format!(
                                "Benchmark::{variant} has no parse arm in wire.rs; the \
                                 workload cannot be requested over COUNTD/1"
                            ),
                        ));
                    }
                    let row = variant.to_lowercase();
                    if !Self::has_oracle_row(bf, &row) {
                        out.push(finding(
                            &bf.source.path,
                            self.id(),
                            *line,
                            format!(
                                "Benchmark::{variant} has no `{row}` row in the \
                                 oracle-table module doc"
                            ),
                        ));
                    }
                }
            }
        }

        // (c): every enum that declares a `const ALL` roster must list
        // every variant in it.
        for (wf, e) in ws.enums() {
            let Some((start, end)) = Self::roster_span(wf, &e.name) else {
                continue;
            };
            for (variant, line) in &e.variants {
                let in_roster = wf
                    .find_token_seq_in(&[&e.name, ":", ":", variant], start, end)
                    .or_else(|| {
                        wf.find_token_seq_in(&["Self", ":", ":", variant], start, end)
                    })
                    .is_some();
                if !in_roster {
                    out.push(finding(
                        &wf.source.path,
                        self.id(),
                        *line,
                        format!(
                            "{0}::{1} is missing from {0}::ALL; roster walks will \
                             silently skip it",
                            e.name, variant
                        ),
                    ));
                }
            }
        }

        // (d): wildcard arms alongside workspace-enum patterns in the
        // wire/serve dispatch code.
        let enum_names = ws.enum_names();
        for path in [WIRE_FILE, SERVE_FILE] {
            let Some(wf) = ws.file(path) else { continue };
            for m in wf.matches() {
                let over_enum = m.arms.iter().any(|a| {
                    let toks: Vec<&str> = a.pattern.split_whitespace().collect();
                    toks.windows(3).any(|w| {
                        enum_names.contains(w[0]) && w[1] == ":" && w[2] == ":"
                    })
                });
                if !over_enum {
                    continue;
                }
                for arm in m.arms.iter().filter(|a| a.pattern.trim() == "_") {
                    out.push(finding(
                        &wf.source.path,
                        self.id(),
                        arm.line,
                        "wildcard `_` arm in a match over a workspace enum: a future \
                         variant would be silently swallowed here instead of failing to \
                         compile; handle variants explicitly"
                            .to_string(),
                    ));
                }
            }
        }

        out
    }
}

// ---------------------------------------------------------------------------
// nested-lock-in-serve
// ---------------------------------------------------------------------------

/// Intraprocedural MutexGuard-liveness tracking in serve.rs.
pub struct NestedLockInServe;

impl NestedLockInServe {
    /// Counts lock acquisitions on one line: direct `.lock(` calls plus
    /// calls into file-local lock-taking helpers. Tokens after a closure
    /// opener (`|`) are deferred work, not an acquisition on this line —
    /// `thread::spawn(move || accept_loop(…))` locks on the new thread.
    fn acquisitions(toks: &[Tok<'_>], lockers: &BTreeSet<&str>) -> usize {
        let deferred_from = toks
            .iter()
            .position(|t| t.text == "|")
            .unwrap_or(toks.len());
        let locker_call = |i: usize, t: &Tok<'_>| {
            t.is_word
                && lockers.contains(t.text)
                && toks.get(i + 1).is_some_and(|nx| nx.text == "(")
                && i.checked_sub(1).map(|j| toks[j].text) != Some("fn")
        };
        toks.iter()
            .enumerate()
            .take(deferred_from)
            .filter(|&(i, t)| is_method_call(toks, i, "lock") || locker_call(i, t))
            .count()
    }

    /// The variable bound on this line if it binds a guard: `let [mut] v =`
    /// with a guard-producing call (`.lock(` or a MutexGuard-returning
    /// helper) on the right-hand side.
    fn guard_binding(toks: &[Tok<'_>], guard_fns: &BTreeSet<&str>) -> Option<String> {
        if toks.first()?.text != "let" {
            return None;
        }
        let mut i = 1;
        if toks.get(i)?.text == "mut" {
            i += 1;
        }
        let var = toks.get(i)?;
        if !var.is_word || toks.get(i + 1)?.text != "=" {
            return None;
        }
        let rhs = &toks[i + 2..];
        let produces_guard = rhs.iter().enumerate().any(|(j, t)| {
            is_method_call(rhs, j, "lock")
                || (t.is_word
                    && guard_fns.contains(t.text)
                    && rhs.get(j + 1).is_some_and(|nx| nx.text == "("))
        });
        produces_guard.then(|| var.text.to_string())
    }
}

impl Rule for NestedLockInServe {
    fn id(&self) -> &'static str {
        "nested-lock-in-serve"
    }
    fn summary(&self) -> &'static str {
        "lock acquisition in serve.rs while a MutexGuard is already live"
    }
    fn rationale(&self) -> &'static str {
        "CellCache wraps one Mutex and a pile of helpers that take it; a helper called \
         while the caller already holds the guard deadlocks every worker thread behind a \
         lock that will never be released — the whole daemon stops serving, with no panic \
         and no backtrace. The symbol graph knows which helpers take the lock (directly or \
         transitively) and which return guards, so holding a guard across such a call is a \
         lint, not a production incident. Scope guards tightly (inner block or drop()) \
         before calling back into the cache."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let Some(wf) = ws.file(SERVE_FILE) else {
            return Vec::new();
        };
        let fns: Vec<_> = wf.fns().collect();

        // Lock-taking fn names: direct `.lock(` in the body, then the
        // transitive closure over file-local calls.
        let mut lockers: BTreeSet<&str> = fns
            .iter()
            .filter(|f| {
                wf.find_token_seq_in(&[".", "lock", "("], f.line, f.end_line)
                    .is_some()
            })
            .map(|f| f.name.as_str())
            .collect();
        loop {
            let mut grew = false;
            for f in &fns {
                if lockers.contains(f.name.as_str()) {
                    continue;
                }
                let calls_locker = wf
                    .source
                    .lines
                    .iter()
                    .filter(|l| {
                        !l.in_test && l.number >= f.line && l.number <= f.end_line
                    })
                    .any(|l| Self::acquisitions(&tokens(&l.code), &lockers) > 0);
                if calls_locker {
                    lockers.insert(f.name.as_str());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        let guard_fns: BTreeSet<&str> = fns
            .iter()
            .filter(|f| f.signature.contains("MutexGuard"))
            .map(|f| f.name.as_str())
            .collect();

        let mut out = Vec::new();
        for f in &fns {
            // (variable name, brace depth the guard's scope opened at).
            let mut guards: Vec<(String, i64)> = Vec::new();
            let mut depth: i64 = 0;
            for line in wf
                .source
                .lines
                .iter()
                .filter(|l| l.number >= f.line && l.number <= f.end_line)
            {
                if line.in_test {
                    continue;
                }
                let toks = tokens(&line.code);
                let acqs = Self::acquisitions(&toks, &lockers);
                if !guards.is_empty() && acqs > 0 {
                    let (held, at) = &guards[guards.len() - 1];
                    out.push(finding(
                        &wf.source.path,
                        self.id(),
                        line.number,
                        format!(
                            "lock acquired while guard `{held}` (bound at depth {at}) is \
                             still live; this deadlocks the serving path — drop or \
                             re-scope the guard first"
                        ),
                    ));
                } else if acqs >= 2 {
                    out.push(finding(
                        &wf.source.path,
                        self.id(),
                        line.number,
                        "two lock acquisitions in one statement; the second waits on \
                         the first's guard"
                            .to_string(),
                    ));
                }
                // drop(var) releases a tracked guard early.
                guards.retain(|(var, _)| {
                    !line_has_seq(&line.code, &["drop", "(", var, ")"])
                });
                let binding = Self::guard_binding(&toks, &guard_fns);
                for c in line.code.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            guards.retain(|(_, at)| *at <= depth);
                        }
                        _ => {}
                    }
                }
                if let Some(var) = binding {
                    guards.push((var, depth));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// unbounded-stream-in-serve
// ---------------------------------------------------------------------------

/// Requires every socket endpoint in serve.rs to be reachable from a
/// deadline-arming call.
pub struct UnboundedStreamInServe;

impl UnboundedStreamInServe {
    /// Whether this line arms a socket deadline.
    fn line_sets_deadline(code: &str) -> bool {
        line_has_seq(code, &[".", "set_read_timeout", "("])
            || line_has_seq(code, &[".", "set_write_timeout", "("])
    }

    /// Whether this line opens a socket endpoint: `TcpStream::connect`
    /// (not `connect_timeout`, which is bounded by construction) or an
    /// `.accept(`/`.incoming(` call on a listener.
    fn line_opens_endpoint(code: &str) -> bool {
        if line_has_seq(code, &["TcpStream", ":", ":", "connect"]) {
            return true;
        }
        let toks = tokens(code);
        toks.iter()
            .enumerate()
            .any(|(i, _)| is_method_call(&toks, i, "accept") || is_method_call(&toks, i, "incoming"))
    }
}

impl Rule for UnboundedStreamInServe {
    fn id(&self) -> &'static str {
        "unbounded-stream-in-serve"
    }
    fn summary(&self) -> &'static str {
        "TcpStream opened in serve.rs with no reachable set_read_timeout/set_write_timeout"
    }
    fn rationale(&self) -> &'static str {
        "A socket without deadlines hands flow control to the peer: one client that stops \
         reading (or writing) parks a handler thread forever, and enough of them wedge the \
         daemon with no panic and no backtrace — the exact failure the chaos suite's \
         slow-client probe exercises. Every function that connects or accepts must arm \
         read/write deadlines itself or call (transitively) a helper that does; \
         pragma-justify the rare endpoint with provably no subsequent I/O (e.g. the \
         shutdown wake-up poke)."
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let Some(wf) = ws.file(SERVE_FILE) else {
            return Vec::new();
        };
        let fns: Vec<_> = wf.fns().collect();
        let code_lines = |lo: usize, hi: usize| {
            wf.source
                .lines
                .iter()
                .filter(move |l| !l.in_test && l.number >= lo && l.number <= hi)
        };

        // Deadline-arming fns: a set_*_timeout call in the body, then the
        // transitive closure over file-local calls (a fn that calls a
        // bounded helper is itself bounded).
        let mut bounded: BTreeSet<&str> = fns
            .iter()
            .filter(|f| code_lines(f.line, f.end_line).any(|l| Self::line_sets_deadline(&l.code)))
            .map(|f| f.name.as_str())
            .collect();
        loop {
            let mut grew = false;
            for f in &fns {
                if bounded.contains(f.name.as_str()) {
                    continue;
                }
                let calls_bounded = code_lines(f.line, f.end_line).any(|l| {
                    let toks = tokens(&l.code);
                    toks.iter().enumerate().any(|(i, t)| {
                        t.is_word
                            && bounded.contains(t.text)
                            && toks.get(i + 1).is_some_and(|nx| nx.text == "(")
                            && i.checked_sub(1).map(|j| toks[j].text) != Some("fn")
                    })
                });
                if calls_bounded {
                    bounded.insert(f.name.as_str());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        let mut out = Vec::new();
        for f in fns.iter().filter(|f| !bounded.contains(f.name.as_str())) {
            for line in code_lines(f.line, f.end_line) {
                if Self::line_opens_endpoint(&line.code) {
                    out.push(finding(
                        &wf.source.path,
                        self.id(),
                        line.number,
                        format!(
                            "TcpStream used in `{}` without a reachable \
                             set_read_timeout/set_write_timeout; unbounded socket I/O can \
                             hang the serving path",
                            f.name
                        ),
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// unused-pragma
// ---------------------------------------------------------------------------

/// An `allow` pragma that suppresses zero findings is itself a finding.
///
/// The findings are computed by the driver (it alone knows, after
/// suppression, which pragmas earned their keep); this registry entry
/// carries the id, catalog text and the unsuppressible marker.
pub struct UnusedPragma;

impl UnusedPragma {
    /// The id, exposed so the driver can emit findings under it.
    pub const ID: &'static str = "unused-pragma";
}

impl Rule for UnusedPragma {
    fn id(&self) -> &'static str {
        Self::ID
    }
    fn summary(&self) -> &'static str {
        "countlint pragma whose allow() suppresses zero findings"
    }
    fn rationale(&self) -> &'static str {
        "A pragma is a standing claim that a violation exists and is justified. When the \
         code under it changes, the claim can go stale: the waiver then silently covers \
         the *next* violation someone introduces on that line, with a justification \
         written for different code. Stale pragmas are findings so the waiver set stays \
         exactly as large as the violation set. Findings of this rule cannot be \
         suppressed (a pragma cannot vouch for a pragma)."
    }
    fn suppressible(&self) -> bool {
        false
    }
    fn check(&self, _ws: &Workspace) -> Vec<Finding> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// pragma hygiene (meta rule)
// ---------------------------------------------------------------------------

/// Rejects malformed pragmas and pragmas naming unknown rules.
///
/// Findings of this rule cannot themselves be suppressed: a broken
/// suppression must never silence anything.
pub struct PragmaHygiene;

impl PragmaHygiene {
    /// The id, exposed so the driver can refuse to suppress it.
    pub const ID: &'static str = "malformed-pragma";
}

impl Rule for PragmaHygiene {
    fn id(&self) -> &'static str {
        Self::ID
    }
    fn summary(&self) -> &'static str {
        "countlint pragma that is malformed or names an unknown rule"
    }
    fn rationale(&self) -> &'static str {
        "A suppression that silently fails to parse would leave its author believing an \
         invariant is waived when it is not (or worse, believing a violation is justified \
         when the justification was never recorded). Malformed pragmas are violations \
         themselves and cannot be suppressed."
    }
    fn suppressible(&self) -> bool {
        false
    }
    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for wf in ws.files() {
            let file = &wf.source;
            for bad in &file.bad_pragmas {
                out.push(finding(
                    &file.path,
                    Self::ID,
                    bad.line,
                    format!("malformed countlint pragma: {}", bad.problem),
                ));
            }
            for pragma in &file.pragmas {
                if find(&pragma.rule).is_none() {
                    out.push(finding(
                        &file.path,
                        Self::ID,
                        pragma.line,
                        format!("pragma names unknown rule `{}`", pragma.rule),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            files
                .iter()
                .map(|(p, s)| SourceFile::scan(p, s))
                .collect(),
        )
    }

    fn check_one(rule: &dyn Rule, path: &str, src: &str) -> Vec<Finding> {
        rule.check(&ws(&[(path, src)]))
    }

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in registry() {
            assert!(seen.insert(rule.id()), "duplicate id {}", rule.id());
            assert!(
                rule.id()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                rule.id()
            );
            assert!(!rule.summary().is_empty());
            assert!(!rule.rationale().is_empty());
        }
        assert!(find("nondeterministic-iteration").is_some());
        assert!(find("unused-pragma").is_some());
        assert!(find("nested-lock-in-serve").is_some());
        assert!(find("no-such-rule").is_none());
    }

    #[test]
    fn meta_rules_are_unsuppressible() {
        assert!(!PragmaHygiene.suppressible());
        assert!(!UnusedPragma.suppressible());
        assert!(NondeterministicIteration.suppressible());
    }

    #[test]
    fn indexing_detection_distinguishes_contexts() {
        let cases = [
            ("fields[0]", true),
            ("x.y[i]", true),
            ("f(x)[1]", true),
            ("a[0][1]", true),
            ("vec![1, 2]", false),
            ("#[cfg(test)]", false),
            ("let [a, b] = pair;", false),
            ("let b = [0u8; 1];", false),
            ("fn f(x: [u64; 2]) {}", false),
            ("&[1, 2, 3]", false),
            ("matches!(x, [_, _])", false),
        ];
        for (src, expect) in cases {
            let toks = tokens(src);
            let got = toks
                .iter()
                .enumerate()
                .any(|(i, t)| t.text == "[" && bracket_is_indexing(&toks, i));
            assert_eq!(got, expect, "{src:?}");
        }
    }

    #[test]
    fn each_lexical_rule_fires_on_its_target() {
        let p = "crates/core/src/serve.rs";
        assert_eq!(
            check_one(&NondeterministicIteration, p, "use std::collections::HashMap;\n").len(),
            1
        );
        assert_eq!(
            check_one(&WallClockInCore, p, "let t = Instant::now();\n").len(),
            1
        );
        assert_eq!(
            check_one(
                &PanicInServingPath,
                p,
                "x.unwrap(); y.expect(\"m\"); panic!(\"b\"); let v = a[0];\n"
            )
            .len(),
            4
        );
        assert_eq!(
            check_one(&UndocumentedRelaxedAtomic, p, "c.load(Ordering::Relaxed);\n").len(),
            1
        );
        assert_eq!(
            check_one(&LossyCastInWire, p, "let n = big as usize;\n").len(),
            1
        );
    }

    #[test]
    fn rules_ignore_tests_comments_and_strings() {
        let src = "\
// Instant and HashMap in a comment.
let s = \"Instant HashMap Relaxed x.unwrap()\";
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn f() { x.unwrap(); let t = Instant::now(); }
}
";
        let p = "crates/core/src/serve.rs";
        for rule in registry() {
            assert!(
                check_one(*rule, p, src).is_empty(),
                "{} fired",
                rule.id()
            );
        }
    }

    #[test]
    fn scoping_is_per_rule() {
        let clock = "let t = Instant::now();\n";
        assert_eq!(check_one(&WallClockInCore, "crates/core/src/grid.rs", clock).len(), 1);
        assert!(check_one(&WallClockInCore, "crates/bench/src/bin/repro/bench.rs", clock).is_empty());
        assert!(check_one(&WallClockInCore, "shims/criterion/src/lib.rs", clock).is_empty());
        let idx = "let v = a[0];\n";
        assert_eq!(check_one(&PanicInServingPath, "crates/core/src/wire.rs", idx).len(), 1);
        assert!(check_one(&PanicInServingPath, "crates/core/src/report.rs", idx).is_empty());
        let cast = "let n = big as u32;\n";
        assert_eq!(check_one(&LossyCastInWire, "crates/core/src/wire.rs", cast).len(), 1);
        assert!(check_one(&LossyCastInWire, "crates/core/src/grid.rs", cast).is_empty());
    }

    #[test]
    fn use_as_rename_is_not_a_cast() {
        let src = "use foo::bar as baz;\n";
        assert!(check_one(&LossyCastInWire, "crates/core/src/wire.rs", src).is_empty());
    }

    #[test]
    fn pragma_hygiene_flags_unknown_rules_and_bad_syntax() {
        let src = "\
// countlint: allow(not-a-rule) -- reason
// countlint: allow(missing-reason)
let x = 1;
";
        let findings = check_one(&PragmaHygiene, "crates/core/src/lib.rs", src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.message.contains("unknown rule")));
        assert!(findings.iter().any(|f| f.message.contains("missing")));
    }

    #[test]
    fn unregistered_experiment_sees_across_files() {
        let registry_src = "\
pub trait Experiment {}
pub fn registry() -> &'static [&'static dyn Experiment] {
    static R: &[&dyn Experiment] = &[&crate::experiments::alpha::Alpha];
    R
}
";
        let good = "pub struct Alpha;\nimpl Experiment for Alpha {}\n";
        let rogue = "pub struct Rogue;\nimpl Experiment for Rogue {}\n";
        let w = ws(&[
            ("crates/core/src/experiment.rs", registry_src),
            ("crates/core/src/experiments/alpha.rs", good),
            ("crates/core/src/experiments/rogue.rs", rogue),
        ]);
        let findings = UnregisteredExperiment.check(&w);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].file, "crates/core/src/experiments/rogue.rs");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("Rogue"));
    }

    #[test]
    fn enum_wire_drift_catches_missing_parse_arm_and_oracle_row() {
        let bench_src = "\
//! | `null` | zero |
//! | `loop` | n |
pub enum Benchmark {
    Null,
    Loop,
    Phantom,
}
";
        let wire_src = "\
pub fn parse(name: &str) -> Option<Benchmark> {
    match name {
        \"null\" => Some(Benchmark::Null),
        \"loop\" => Some(Benchmark::Loop),
        _ => None,
    }
}
";
        let w = ws(&[
            ("crates/core/src/benchmark.rs", bench_src),
            ("crates/core/src/wire.rs", wire_src),
        ]);
        let findings = EnumWireDrift.check(&w);
        // Phantom: no parse arm + no oracle row. The `_ => None` arm sits
        // in a match whose patterns are scrubbed string literals, so no
        // wildcard finding fires there.
        let phantom: Vec<_> = findings.iter().filter(|f| f.line == 6).collect();
        assert_eq!(phantom.len(), 2, "{findings:?}");
        assert!(phantom.iter().any(|f| f.message.contains("parse arm")));
        assert!(phantom.iter().any(|f| f.message.contains("oracle-table")));
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn enum_wire_drift_catches_roster_gaps() {
        let src = "\
pub enum Mode { A, B, C }
impl Mode {
    pub const ALL: [Mode; 2] = [Mode::A, Mode::B];
}
";
        let findings = check_one(&EnumWireDrift, "crates/core/src/interface.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("Mode::C"));
    }

    #[test]
    fn enum_wire_drift_accepts_complete_rosters_and_self_paths() {
        let src = "\
pub enum Mode { A, B }
impl Mode {
    pub const ALL: [Mode; 2] = [Self::A, Self::B];
}
";
        assert!(check_one(&EnumWireDrift, "crates/core/src/interface.rs", src).is_empty());
    }

    #[test]
    fn enum_wire_drift_flags_wildcard_arms_over_workspace_enums() {
        let src = "\
pub enum Verb { Ping, Stats }
pub fn dispatch(v: &Verb) -> u8 {
    match v {
        Verb::Ping => 1,
        _ => 0,
    }
}
pub fn other(n: u8) -> u8 {
    match n {
        0 => 1,
        _ => 0,
    }
}
";
        let findings = check_one(&EnumWireDrift, "crates/core/src/wire.rs", src);
        assert_eq!(findings.len(), 1, "non-enum matches keep wildcards: {findings:?}");
        assert_eq!(findings[0].line, 5);
        // The same file outside wire/serve is not dispatch code.
        assert!(check_one(&EnumWireDrift, "crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn unbounded_stream_flags_undeadlined_endpoints() {
        let src = "\
use std::net::{TcpListener, TcpStream};
use std::time::Duration;
fn arm(stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(10)));
}
fn dial(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    arm(&stream);
    Ok(stream)
}
fn dial_raw(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
fn accept_raw(listener: &TcpListener) {
    let _ = listener.accept();
}
";
        let findings = check_one(&UnboundedStreamInServe, "crates/core/src/serve.rs", src);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![13, 16], "{findings:?}");
        assert!(findings[0].message.contains("dial_raw"));
        // Deadlines reached transitively (dial → arm) satisfy the rule,
        // and outside serve.rs it is silent.
        assert!(check_one(&UnboundedStreamInServe, "crates/core/src/wire.rs", src).is_empty());
    }

    #[test]
    fn nested_lock_flags_reacquisition_and_helper_calls() {
        let src = "\
use std::sync::{Mutex, MutexGuard, PoisonError};
pub struct Cache { mem: Mutex<u64>, disk: Mutex<u64> }
impl Cache {
    fn lock_mem(&self) -> MutexGuard<'_, u64> {
        self.mem.lock().unwrap_or_else(PoisonError::into_inner)
    }
    fn bump(&self) {
        let mut mem = self.lock_mem();
        *mem += 1;
    }
    fn double(&self) -> u64 {
        let mem = self.lock_mem();
        let disk = self.disk.lock().unwrap_or_else(PoisonError::into_inner);
        *mem + *disk
    }
    fn helper_while_live(&self) {
        let guard = self.lock_mem();
        self.bump();
        drop(guard);
        self.bump();
    }
    fn scoped_is_fine(&self) -> u64 {
        let n = {
            let mem = self.lock_mem();
            *mem
        };
        self.bump();
        n
    }
}
";
        let findings = check_one(&NestedLockInServe, "crates/core/src/serve.rs", src);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![13, 18], "{findings:?}");
        // Outside serve.rs the rule is silent.
        assert!(check_one(&NestedLockInServe, "crates/core/src/exec.rs", src).is_empty());
    }
}
