//! Phase 2 substrate: the workspace-wide symbol graph.
//!
//! A [`Workspace`] owns every scanned file together with its parsed item
//! spans ([`crate::parse`]), and answers the cross-file questions the
//! semantic rules ask: which enums exist and where their variants are
//! defined, which types implement a trait, where a named `fn`'s body
//! starts and ends, and whether a token sequence occurs in a file's
//! non-test code.

use crate::parse::{self, Item, ItemKind};
use crate::scan::{tokens, SourceFile};
use std::collections::BTreeSet;

/// One file plus its parsed items.
#[derive(Debug)]
pub struct WsFile {
    pub source: SourceFile,
    pub items: Vec<Item>,
}

impl WsFile {
    /// The first non-test `fn` with this name, if any.
    pub fn fn_named(&self, name: &str) -> Option<&Item> {
        self.items
            .iter()
            .find(|i| i.kind == ItemKind::Fn && !i.in_test && i.name == name)
    }

    /// All non-test `fn` items.
    pub fn fns(&self) -> impl Iterator<Item = &Item> {
        self.items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn && !i.in_test)
    }

    /// All non-test `match` spans.
    pub fn matches(&self) -> impl Iterator<Item = &Item> {
        self.items
            .iter()
            .filter(|i| i.kind == ItemKind::Match && !i.in_test)
    }

    /// The non-test enum with this name, if the file defines one.
    pub fn enum_named(&self, name: &str) -> Option<&Item> {
        self.items
            .iter()
            .find(|i| i.kind == ItemKind::Enum && !i.in_test && i.name == name)
    }

    /// First non-test code line in `[start, end]` whose tokens contain
    /// `seq` contiguously.
    pub fn find_token_seq_in(&self, seq: &[&str], start: usize, end: usize) -> Option<usize> {
        self.source
            .lines
            .iter()
            .filter(|l| !l.in_test && l.number >= start && l.number <= end)
            .find(|l| line_has_seq(&l.code, seq))
            .map(|l| l.number)
    }

    /// First non-test code line anywhere in the file containing `seq`.
    pub fn find_token_seq(&self, seq: &[&str]) -> Option<usize> {
        self.find_token_seq_in(seq, 1, usize::MAX)
    }
}

/// Whether one scrubbed code line contains `seq` as contiguous tokens.
pub fn line_has_seq(code: &str, seq: &[&str]) -> bool {
    let toks = tokens(code);
    if toks.len() < seq.len() {
        return false;
    }
    toks.windows(seq.len())
        .any(|w| w.iter().zip(seq).all(|(t, s)| t.text == *s))
}

/// The workspace symbol graph: every file, parsed.
#[derive(Debug)]
pub struct Workspace {
    files: Vec<WsFile>,
}

impl Workspace {
    pub fn new(sources: Vec<SourceFile>) -> Workspace {
        let files = sources
            .into_iter()
            .map(|source| {
                let items = parse::parse(&source);
                WsFile { source, items }
            })
            .collect();
        Workspace { files }
    }

    pub fn files(&self) -> &[WsFile] {
        &self.files
    }

    /// The file at this repo-relative path, if scanned.
    pub fn file(&self, path: &str) -> Option<&WsFile> {
        self.files.iter().find(|f| f.source.path == path)
    }

    /// All non-test enum definitions: `(file, enum item)`.
    pub fn enums(&self) -> impl Iterator<Item = (&WsFile, &Item)> {
        self.files.iter().flat_map(|f| {
            f.items
                .iter()
                .filter(|i| i.kind == ItemKind::Enum && !i.in_test)
                .map(move |i| (f, i))
        })
    }

    /// Names of every non-test enum defined anywhere in the workspace.
    pub fn enum_names(&self) -> BTreeSet<&str> {
        self.enums().map(|(_, e)| e.name.as_str()).collect()
    }

    /// All non-test `impl <trait_name> for T` blocks: `(file, impl item)`.
    pub fn impls_of(&self, trait_name: &str) -> impl Iterator<Item = (&WsFile, &Item)> {
        let want = trait_name.to_string();
        self.files.iter().flat_map(move |f| {
            let want = want.clone();
            f.items
                .iter()
                .filter(move |i| {
                    i.kind == ItemKind::Impl
                        && !i.in_test
                        && i.trait_name.as_deref() == Some(want.as_str())
                })
                .map(move |i| (f, i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            files
                .iter()
                .map(|(p, s)| SourceFile::scan(p, s))
                .collect(),
        )
    }

    #[test]
    fn cross_file_queries() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub enum Color { Red, Green }\npub trait Paint {}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct Wall;\nimpl Paint for Wall {}\n",
            ),
        ]);
        assert!(w.enum_names().contains("Color"));
        let impls: Vec<_> = w.impls_of("Paint").collect();
        assert_eq!(impls.len(), 1);
        assert_eq!(impls[0].1.name, "Wall");
        assert_eq!(impls[0].0.source.path, "crates/b/src/lib.rs");
    }

    #[test]
    fn token_seq_search_respects_spans_and_tests() {
        let src = "\
fn wire() {
    let b = Benchmark::Loop;
}
#[cfg(test)]
mod tests {
    fn t() { let b = Benchmark::Null; }
}
";
        let w = ws(&[("crates/a/src/wire.rs", src)]);
        let f = w.file("crates/a/src/wire.rs").unwrap();
        assert_eq!(f.find_token_seq(&["Benchmark", ":", ":", "Loop"]), Some(2));
        assert_eq!(
            f.find_token_seq(&["Benchmark", ":", ":", "Null"]),
            None,
            "test-only code is invisible to drift checks"
        );
        assert_eq!(f.find_token_seq_in(&["Benchmark", ":", ":", "Loop"], 3, 9), None);
    }
}
