//! countlint — dependency-free static analysis for the counterlab
//! workspace.
//!
//! The laboratory's correctness story rests on invariants no compiler
//! checks: results must be pure, bit-exact functions of their seeds
//! (the content-addressed serve cache depends on it), the serving path
//! must not panic while clients wait, wire codecs must reject rather
//! than truncate, and the hand-maintained registries (Experiment
//! registry, Benchmark zoo, wire parse arms, oracle tables, `ALL`
//! rosters) must stay in lockstep. countlint makes those invariants
//! machine-checked.
//!
//! Because the workspace builds offline with no registry access, the
//! linter parses nothing with `syn`. It runs in two phases:
//!
//! 1. [`scan`] is a comment- and string-literal-aware lexical pass, and
//!    [`parse`] recovers item spans (fn/struct/enum/impl/match) from the
//!    scrubbed token stream via brace-depth bookkeeping; [`symbols`]
//!    assembles every file into a workspace-wide symbol graph.
//! 2. [`rules`] holds the rule trait and the static registry (mirroring
//!    the `Experiment` registry idiom); each rule checks the whole
//!    workspace, so cross-file invariants are first-class. [`report`]
//!    renders deterministic text, JSON and GitHub-annotation reports,
//!    and [`baseline`] implements the findings ratchet.
//!
//! Violations are suppressed inline with a justification pragma:
//!
//! ```text
//! // countlint: allow(undocumented-relaxed-atomic) -- independent stat
//! // counter; no other memory is published under this atomic.
//! ```
//!
//! A pragma on its own line covers the next line that carries code; a
//! trailing pragma covers its own line. Reasons are mandatory, malformed
//! pragmas are themselves (unsuppressable) violations, and a pragma that
//! suppresses nothing is a stale claim and an `unused-pragma` finding.
//! Pragma-shaped text inside doc comments is documentation and inert.

pub mod baseline;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::Finding;
use rules::{registry, UnusedPragma};
use scan::SourceFile;
use symbols::Workspace;

/// The result of linting a tree or a single source text.
#[derive(Debug)]
pub struct LintOutcome {
    /// Unsuppressed violations in canonical `(file, line, rule)` order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings silenced by a well-formed pragma.
    pub suppressed: usize,
}

impl LintOutcome {
    /// Whether the linted tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Path components the walker never descends into or scans: build
/// output, VCS metadata, and the linter's own known-bad fixture corpus.
const SKIP_COMPONENTS: &[&str] = &["target", ".git", "lint_fixtures"];

/// Lints every `.rs` file under `root`, returning findings with paths
/// relative to `root` (`/`-separated).
pub fn lint_root(root: &Path) -> io::Result<LintOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = relative_slash_path(root, &path);
        let source = fs::read_to_string(&path)?;
        sources.push(SourceFile::scan(&rel, &source));
    }
    Ok(lint_files(sources))
}

/// Lints a single source text as if it lived at `virtual_path`
/// (repo-relative, `/`-separated — rule scoping keys off it). The text
/// is a one-file workspace, so cross-file rules see only it.
pub fn lint_source(virtual_path: &str, source: &str) -> LintOutcome {
    lint_files(vec![SourceFile::scan(virtual_path, source)])
}

/// Lints several `(virtual_path, source)` texts as one workspace.
pub fn lint_sources(files: &[(&str, &str)]) -> LintOutcome {
    lint_files(
        files
            .iter()
            .map(|(p, s)| SourceFile::scan(p, s))
            .collect(),
    )
}

/// Builds the symbol graph, runs every rule, applies suppression, and
/// flags stale pragmas.
fn lint_files(sources: Vec<SourceFile>) -> LintOutcome {
    let ws = Workspace::new(sources);
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    // Pragmas that silenced at least one finding: (file path, pragma line).
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();

    for rule in registry() {
        for finding in rule.check(&ws) {
            let pragma_line = if rule.suppressible() {
                ws.file(&finding.file)
                    .and_then(|wf| wf.source.suppressing_pragma(rule.id(), finding.line))
            } else {
                None
            };
            match pragma_line {
                Some(line) => {
                    suppressed += 1;
                    used.insert((finding.file.clone(), line));
                }
                None => findings.push(finding),
            }
        }
    }

    // Stale-pragma pass: every well-formed pragma naming a known rule
    // must have suppressed something. (Pragmas naming unknown rules are
    // pragma-hygiene findings; pragmas on test-only lines cover code no
    // rule ever checks and are left to the reader.)
    for wf in ws.files() {
        for pragma in &wf.source.pragmas {
            if rules::find(&pragma.rule).is_none() {
                continue;
            }
            let in_test = wf
                .source
                .lines
                .get(pragma.line - 1)
                .map(|l| l.in_test)
                .unwrap_or(false);
            if in_test || used.contains(&(wf.source.path.clone(), pragma.line)) {
                continue;
            }
            findings.push(Finding {
                file: wf.source.path.clone(),
                line: pragma.line,
                rule: UnusedPragma::ID.to_string(),
                message: format!(
                    "pragma allow({}) suppresses nothing; the waiver is stale — remove \
                     it or re-scope it onto the violating line",
                    pragma.rule
                ),
            });
        }
    }

    report::sort(&mut findings);
    LintOutcome {
        findings,
        files_scanned: ws.files().len(),
        suppressed,
    }
}

/// Recursively collects `.rs` files, skipping [`SKIP_COMPONENTS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if SKIP_COMPONENTS.contains(&name.as_ref()) {
            continue;
        }
        let kind = entry.file_type()?;
        if kind.is_dir() {
            collect_rs_files(&path, out)?;
        } else if kind.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_suppression() {
        let src = "\
// countlint: allow(nondeterministic-iteration) -- never iterated; keyed reads only
use std::collections::HashMap;
use std::collections::HashSet;
";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "nondeterministic-iteration");
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn pragma_that_suppresses_nothing_is_itself_a_finding() {
        let src = "\
// countlint: allow(wall-clock-in-core) -- stale: the Instant below was removed
let x = 1;
";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "unused-pragma");
        assert_eq!(out.findings[0].line, 1);
        assert_eq!(out.suppressed, 0);
    }

    #[test]
    fn unused_pragma_findings_cannot_be_suppressed() {
        // A pragma vouching for an unused pragma: both suppress nothing,
        // and unused-pragma is unsuppressible, so both are findings.
        let src = "\
// countlint: allow(unused-pragma) -- nice try
// countlint: allow(wall-clock-in-core) -- stale
let x = 1;
";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out.findings.iter().all(|f| f.rule == "unused-pragma"));
    }

    #[test]
    fn stale_pragmas_in_test_code_are_not_policed() {
        let src = "\
#[cfg(test)]
mod tests {
    // countlint: allow(wall-clock-in-core) -- rules skip tests anyway
    fn f() {}
}
";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert!(out.is_clean(), "{:?}", out.findings);
    }

    #[test]
    fn malformed_pragma_cannot_suppress_itself() {
        let src = "// countlint: allow(malformed-pragma) -- nice try\nlet x = 1;\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        // The pragma parses and names the hygiene rule, but it suppresses
        // nothing — which since v2 is itself a finding.
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "unused-pragma");

        let bad = "// countlint: allow(whatever)\nlet x = 1;\n";
        let out = lint_source("crates/x/src/lib.rs", bad);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "malformed-pragma");
    }

    #[test]
    fn unknown_rule_pragma_is_flagged() {
        let src = "// countlint: allow(not-a-rule) -- reason\nlet x = 1;\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn findings_are_sorted_canonically() {
        let src = "let t = Instant::now(); use std::collections::HashMap;\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.findings.len(), 2);
        assert!(out.findings[0].rule < out.findings[1].rule);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert!(out.is_clean());
    }

    #[test]
    fn lint_sources_builds_one_workspace() {
        let out = lint_sources(&[
            (
                "crates/core/src/experiment.rs",
                "pub fn registry() -> u8 {\n    0\n}\n",
            ),
            (
                "crates/core/src/experiments/x.rs",
                "pub struct X;\nimpl Experiment for X {}\n",
            ),
        ]);
        assert_eq!(out.files_scanned, 2);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "unregistered-experiment");
    }
}
