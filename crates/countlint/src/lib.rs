//! countlint — dependency-free static analysis for the counterlab
//! workspace.
//!
//! The laboratory's correctness story rests on invariants no compiler
//! checks: results must be pure, bit-exact functions of their seeds
//! (the content-addressed serve cache depends on it), the serving path
//! must not panic while clients wait, and wire codecs must reject rather
//! than truncate. countlint makes those invariants machine-checked.
//!
//! Because the workspace builds offline with no registry access, the
//! linter parses nothing with `syn`: [`scan`] is a comment- and
//! string-literal-aware lexical pass, [`rules`] holds the rule trait and
//! the static registry (mirroring the `Experiment` registry idiom), and
//! [`report`] renders deterministic text and JSON reports.
//!
//! Violations are suppressed inline with a justification pragma:
//!
//! ```text
//! // countlint: allow(undocumented-relaxed-atomic) -- independent stat
//! // counter; no other memory is published under this atomic.
//! ```
//!
//! A pragma on its own line covers the next line that carries code; a
//! trailing pragma covers its own line. Reasons are mandatory, and
//! malformed pragmas are themselves (unsuppressable) violations.

pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::Finding;
use rules::{registry, PragmaHygiene};
use scan::SourceFile;

/// The result of linting a tree or a single source text.
#[derive(Debug)]
pub struct LintOutcome {
    /// Unsuppressed violations in canonical `(file, line, rule)` order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings silenced by a well-formed pragma.
    pub suppressed: usize,
}

impl LintOutcome {
    /// Whether the linted tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Path components the walker never descends into or scans: build
/// output, VCS metadata, and the linter's own known-bad fixture corpus.
const SKIP_COMPONENTS: &[&str] = &["target", ".git", "lint_fixtures"];

/// Lints every `.rs` file under `root`, returning findings with paths
/// relative to `root` (`/`-separated).
pub fn lint_root(root: &Path) -> io::Result<LintOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut outcome = LintOutcome {
        findings: Vec::new(),
        files_scanned: 0,
        suppressed: 0,
    };
    for path in files {
        let rel = relative_slash_path(root, &path);
        let source = fs::read_to_string(&path)?;
        lint_one(&rel, &source, &mut outcome);
    }
    report::sort(&mut outcome.findings);
    Ok(outcome)
}

/// Lints a single source text as if it lived at `virtual_path`
/// (repo-relative, `/`-separated — rule scoping keys off it).
pub fn lint_source(virtual_path: &str, source: &str) -> LintOutcome {
    let mut outcome = LintOutcome {
        findings: Vec::new(),
        files_scanned: 0,
        suppressed: 0,
    };
    lint_one(virtual_path, source, &mut outcome);
    report::sort(&mut outcome.findings);
    outcome
}

/// Scans one file and folds its findings into `outcome`, applying
/// suppression pragmas (which never silence pragma-hygiene findings).
fn lint_one(rel_path: &str, source: &str, outcome: &mut LintOutcome) {
    let file = SourceFile::scan(rel_path, source);
    outcome.files_scanned += 1;
    for rule in registry() {
        if !rule.applies_to(rel_path) {
            continue;
        }
        for finding in rule.check(&file) {
            let suppressible = rule.id() != PragmaHygiene::ID;
            if suppressible && file.is_suppressed(rule.id(), finding.line) {
                outcome.suppressed += 1;
            } else {
                outcome.findings.push(finding);
            }
        }
    }
}

/// Recursively collects `.rs` files, skipping [`SKIP_COMPONENTS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if SKIP_COMPONENTS.contains(&name.as_ref()) {
            continue;
        }
        let kind = entry.file_type()?;
        if kind.is_dir() {
            collect_rs_files(&path, out)?;
        } else if kind.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_suppression() {
        let src = "\
// countlint: allow(nondeterministic-iteration) -- never iterated; keyed reads only
use std::collections::HashMap;
use std::collections::HashSet;
";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "nondeterministic-iteration");
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn malformed_pragma_cannot_suppress_itself() {
        let src = "// countlint: allow(malformed-pragma) -- nice try\nlet x = 1;\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        // The pragma parses, but it names the hygiene rule, whose
        // findings ignore suppression; here it simply has no finding to
        // suppress and is counted as nothing.
        assert!(out.findings.is_empty());

        let bad = "// countlint: allow(whatever)\nlet x = 1;\n";
        let out = lint_source("crates/x/src/lib.rs", bad);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "malformed-pragma");
    }

    #[test]
    fn unknown_rule_pragma_is_flagged() {
        let src = "// countlint: allow(not-a-rule) -- reason\nlet x = 1;\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn findings_are_sorted_canonically() {
        let src = "let t = Instant::now(); use std::collections::HashMap;\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(out.findings.len(), 2);
        assert!(out.findings[0].rule < out.findings[1].rule);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let out = lint_source("crates/x/src/lib.rs", src);
        assert!(out.is_clean());
    }
}
