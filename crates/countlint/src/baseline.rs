//! The findings ratchet: a committed baseline of known findings.
//!
//! A baseline records, per `(file, rule)`, how many findings the tree is
//! allowed to carry. `--baseline` makes the exit code a *ratchet*: a
//! count above its baseline entry fails the run, a count at or below it
//! passes, and improvements are reported so the baseline can be
//! tightened with `--write-baseline`. The dogfood tree keeps an empty
//! baseline committed (it lints clean); the ratchet exists so a future
//! rule can land before the tree is fully clean under it, without
//! letting any file regress.
//!
//! The file format is a single-line JSON document rendered and parsed by
//! this module (no serde in an offline workspace):
//!
//! ```text
//! {"countlint-baseline":1,"entries":[{"file":"a.rs","rule":"r","count":2}]}
//! ```
//!
//! Rendering is deterministic (entries sorted by file then rule), so the
//! committed file is byte-stable. The parser tolerates arbitrary
//! whitespace between tokens but requires the keys in the order shown.

use crate::report::Finding;
use std::collections::BTreeMap;

/// Allowed finding counts keyed by `(file, rule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(String, String), usize>,
}

/// One `(file, rule)` whose count differs from its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    pub file: String,
    pub rule: String,
    pub baseline: usize,
    pub current: usize,
}

/// The result of comparing a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Counts above baseline: these fail the ratchet.
    pub regressions: Vec<Drift>,
    /// Counts below baseline: the baseline can be tightened.
    pub improvements: Vec<Drift>,
}

impl Baseline {
    /// Aggregates findings into per-`(file, rule)` counts.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *entries.entry((f.file.clone(), f.rule.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Renders the canonical single-line document (with trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"countlint-baseline\":1,\"entries\":[");
        for (i, ((file, rule), count)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"file\":");
            json_string(&mut out, file);
            out.push_str(",\"rule\":");
            json_string(&mut out, rule);
            out.push_str(",\"count\":");
            out.push_str(&count.to_string());
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a document produced by [`Baseline::render`] (whitespace
    /// between tokens is tolerated; key order is required).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            at: 0,
        };
        let mut entries = BTreeMap::new();
        p.expect('{')?;
        p.expect_key("countlint-baseline")?;
        let version = p.number()?;
        if version != 1 {
            return Err(format!("unsupported baseline version {version}"));
        }
        p.expect(',')?;
        p.expect_key("entries")?;
        p.expect('[')?;
        p.skip_ws();
        if !p.try_eat(']') {
            loop {
                p.expect('{')?;
                p.expect_key("file")?;
                let file = p.string()?;
                p.expect(',')?;
                p.expect_key("rule")?;
                let rule = p.string()?;
                p.expect(',')?;
                p.expect_key("count")?;
                let count = p.number()?;
                p.expect('}')?;
                if entries.insert((file.clone(), rule.clone()), count).is_some() {
                    return Err(format!("duplicate baseline entry for {file} [{rule}]"));
                }
                if !p.try_eat(',') {
                    break;
                }
            }
            p.expect(']')?;
        }
        p.expect('}')?;
        p.skip_ws();
        if p.at != p.chars.len() {
            return Err("trailing content after baseline document".to_string());
        }
        Ok(Baseline { entries })
    }
}

/// Compares a run's counts against the baseline.
pub fn compare(base: &Baseline, current: &Baseline) -> Delta {
    let mut delta = Delta::default();
    let keys: std::collections::BTreeSet<&(String, String)> =
        base.entries.keys().chain(current.entries.keys()).collect();
    for key in keys {
        let b = base.entries.get(key).copied().unwrap_or(0);
        let c = current.entries.get(key).copied().unwrap_or(0);
        if b == c {
            continue;
        }
        let drift = Drift {
            file: key.0.clone(),
            rule: key.1.clone(),
            baseline: b,
            current: c,
        };
        if c > b {
            delta.regressions.push(drift);
        } else {
            delta.improvements.push(drift);
        }
    }
    delta
}

/// Appends `s` as a JSON string literal (same escaping as the report).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A tiny cursor over the baseline document.
struct Parser {
    chars: Vec<char>,
    at: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.at).is_some_and(|c| c.is_whitespace()) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.chars.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.at,
                self.chars.get(self.at)
            ))
        }
    }

    fn try_eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.chars.get(self.at) == Some(&c) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    /// `"key" :` with the exact key name.
    fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let got = self.string()?;
        if got != key {
            return Err(format!("expected key {key:?}, found {got:?}"));
        }
        self.expect(':')
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.chars.get(self.at) else {
                return Err("unterminated string in baseline".to_string());
            };
            self.at += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(&e) = self.chars.get(self.at) else {
                        return Err("dangling escape in baseline string".to_string());
                    };
                    self.at += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hex: String =
                                self.chars.iter().skip(self.at).take(4).collect();
                            if hex.len() != 4 {
                                return Err("truncated \\u escape".to_string());
                            }
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.at += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let start = self.at;
        while self.chars.get(self.at).is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == start {
            return Err(format!("expected a number at offset {start}"));
        }
        let text: String = self.chars[start..self.at].iter().collect();
        text.parse::<usize>()
            .map_err(|_| format!("number out of range: {text}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &str, line: usize) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule: rule.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip_is_byte_stable() {
        let findings = vec![
            finding("b.rs", "rule-x", 3),
            finding("a.rs", "rule-y", 1),
            finding("b.rs", "rule-x", 9),
        ];
        let base = Baseline::from_findings(&findings);
        let text = base.render();
        assert_eq!(
            text,
            "{\"countlint-baseline\":1,\"entries\":[\
             {\"file\":\"a.rs\",\"rule\":\"rule-y\",\"count\":1},\
             {\"file\":\"b.rs\",\"rule\":\"rule-x\",\"count\":2}]}\n"
        );
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, base);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn empty_baseline_roundtrips() {
        let base = Baseline::default();
        let text = base.render();
        assert_eq!(text, "{\"countlint-baseline\":1,\"entries\":[]}\n");
        assert_eq!(Baseline::parse(&text).unwrap(), base);
    }

    #[test]
    fn parser_tolerates_whitespace_and_rejects_garbage() {
        let spaced = "{ \"countlint-baseline\" : 1 ,\n  \"entries\" : [\n    \
                      { \"file\" : \"a.rs\" , \"rule\" : \"r\" , \"count\" : 2 }\n  ] }\n";
        let base = Baseline::parse(spaced).unwrap();
        assert_eq!(base.entries.get(&("a.rs".into(), "r".into())), Some(&2));
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"countlint-baseline\":2,\"entries\":[]}").is_err());
        assert!(Baseline::parse(
            "{\"countlint-baseline\":1,\"entries\":[]} trailing"
        )
        .is_err());
    }

    #[test]
    fn ratchet_detects_regressions_and_improvements() {
        let base = Baseline::from_findings(&[
            finding("a.rs", "r", 1),
            finding("a.rs", "r", 2),
            finding("b.rs", "r", 1),
        ]);
        let current = Baseline::from_findings(&[
            finding("a.rs", "r", 1),
            finding("c.rs", "r", 1),
        ]);
        let delta = compare(&base, &current);
        assert_eq!(delta.regressions.len(), 1);
        assert_eq!(delta.regressions[0].file, "c.rs");
        assert_eq!((delta.regressions[0].baseline, delta.regressions[0].current), (0, 1));
        assert_eq!(delta.improvements.len(), 2);
        let improved: Vec<&str> = delta.improvements.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(improved, ["a.rs", "b.rs"]);
    }

    #[test]
    fn identical_counts_are_quiet() {
        let base = Baseline::from_findings(&[finding("a.rs", "r", 1)]);
        let delta = compare(&base, &base.clone());
        assert!(delta.regressions.is_empty() && delta.improvements.is_empty());
    }
}
