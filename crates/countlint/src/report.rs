//! Findings and the text / JSON reporters.
//!
//! Both renderers are deterministic: findings are sorted by
//! `(file, line, rule, message)` before rendering, and the JSON encoder
//! emits keys in a fixed order with no whitespace variation, so the JSON
//! report for a given tree is byte-stable across runs and platforms.

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Id of the rule that fired.
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Sorts findings into canonical reporting order.
pub fn sort(findings: &mut [Finding]) {
    findings.sort();
}

/// Renders findings as `path:line: [rule] message` lines plus a summary.
pub fn render_text(findings: &[Finding], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "countlint: {} finding{} in {} file{} scanned ({} suppressed by pragma)\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
        suppressed,
    ));
    out
}

/// Renders findings as a single-line JSON document.
///
/// Schema: `{"countlint":1,"files_scanned":N,"suppressed":M,`
/// `"findings":[{"file":...,"line":...,"rule":...,"message":...},...]}`.
pub fn render_json(findings: &[Finding], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"countlint\":1,\"files_scanned\":");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\"suppressed\":");
    out.push_str(&suppressed.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        json_string(&mut out, &f.file);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"rule\":");
        json_string(&mut out, &f.rule);
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Renders findings as GitHub Actions workflow commands, one `::error`
/// annotation per finding (surfaced inline on the PR diff), followed by
/// the same plain summary line the text reporter ends with.
pub fn render_github(findings: &[Finding], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str("::error file=");
        gh_escape(&mut out, &f.file, true);
        out.push_str(",line=");
        out.push_str(&f.line.to_string());
        out.push_str(",title=countlint(");
        gh_escape(&mut out, &f.rule, true);
        out.push_str(")::");
        gh_escape(&mut out, &f.message, false);
        out.push('\n');
    }
    out.push_str(&format!(
        "countlint: {} finding{} in {} file{} scanned ({} suppressed by pragma)\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
        suppressed,
    ));
    out
}

/// GitHub workflow-command escaping: `%`, CR and LF always; `,` and `:`
/// additionally inside property values.
fn gh_escape(out: &mut String, s: &str, property: bool) {
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\r' => out.push_str("%0D"),
            '\n' => out.push_str("%0A"),
            ',' if property => out.push_str("%2C"),
            ':' if property => out.push_str("%3A"),
            c => out.push(c),
        }
    }
}

/// Appends `s` as a JSON string literal (RFC 8259 escaping).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "b.rs".into(),
                line: 2,
                rule: "wall-clock-in-core".into(),
                message: "second".into(),
            },
            Finding {
                file: "a.rs".into(),
                line: 9,
                rule: "nondeterministic-iteration".into(),
                message: "first".into(),
            },
        ]
    }

    #[test]
    fn sort_orders_by_file_then_line() {
        let mut f = sample();
        sort(&mut f);
        assert_eq!(f[0].file, "a.rs");
        assert_eq!(f[1].file, "b.rs");
    }

    #[test]
    fn text_report_format() {
        let mut f = sample();
        sort(&mut f);
        let text = render_text(&f, 3, 1);
        assert_eq!(
            text,
            "a.rs:9: [nondeterministic-iteration] first\n\
             b.rs:2: [wall-clock-in-core] second\n\
             countlint: 2 findings in 3 files scanned (1 suppressed by pragma)\n"
        );
    }

    #[test]
    fn json_report_is_exact() {
        let mut f = sample();
        sort(&mut f);
        let json = render_json(&f, 3, 1);
        assert_eq!(
            json,
            "{\"countlint\":1,\"files_scanned\":3,\"suppressed\":1,\"findings\":[\
             {\"file\":\"a.rs\",\"line\":9,\"rule\":\"nondeterministic-iteration\",\
             \"message\":\"first\"},\
             {\"file\":\"b.rs\",\"line\":2,\"rule\":\"wall-clock-in-core\",\
             \"message\":\"second\"}]}\n"
        );
    }

    #[test]
    fn github_report_format() {
        let mut f = sample();
        sort(&mut f);
        let gh = render_github(&f, 3, 1);
        assert_eq!(
            gh,
            "::error file=a.rs,line=9,title=countlint(nondeterministic-iteration)::first\n\
             ::error file=b.rs,line=2,title=countlint(wall-clock-in-core)::second\n\
             countlint: 2 findings in 3 files scanned (1 suppressed by pragma)\n"
        );
    }

    #[test]
    fn github_report_escapes_workflow_command_metachars() {
        let f = vec![Finding {
            file: "a,b:c.rs".into(),
            line: 1,
            rule: "r".into(),
            message: "50% bad\nsecond line".into(),
        }];
        let gh = render_github(&f, 1, 0);
        assert!(gh.starts_with("::error file=a%2Cb%3Ac.rs,line=1,"));
        assert!(gh.contains("::50%25 bad%0Asecond line\n"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let f = vec![Finding {
            file: "a\"b.rs".into(),
            line: 1,
            rule: "r".into(),
            message: "tab\tnewline\nquote\"backslash\\".into(),
        }];
        let json = render_json(&f, 1, 0);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\tnewline\\nquote\\\"backslash\\\\"));
    }

    #[test]
    fn empty_report_renders() {
        assert_eq!(
            render_json(&[], 0, 0),
            "{\"countlint\":1,\"files_scanned\":0,\"suppressed\":0,\"findings\":[]}\n"
        );
        assert_eq!(
            render_text(&[], 1, 0),
            "countlint: 0 findings in 1 file scanned (0 suppressed by pragma)\n"
        );
    }
}
