//! Source scanning: a comment- and string-literal-aware pass over one
//! Rust file.
//!
//! countlint deliberately does **not** parse Rust (the workspace builds
//! offline with no registry access, so `syn` is off the table). Instead
//! this module does the one lexical job every rule needs done right:
//! split a file into lines where
//!
//! * **code text** has every comment and every string/char-literal
//!   *interior* blanked out (so `"HashMap"` in a message or `Instant` in
//!   a doc comment can never trip a rule),
//! * **comment text** has everything else blanked out (so suppression
//!   pragmas are only ever read from real comments, never from string
//!   literals that merely talk about pragmas),
//! * each line knows whether it lies inside test-only code (a
//!   `#[cfg(test)]` item, or a file under `tests/`, `benches/` or
//!   `examples/`).
//!
//! The scanner handles nested block comments, escapes in string and char
//! literals, raw strings (`r"…"`, `r#"…"#`), byte strings, and the
//! char-literal/lifetime ambiguity (`'a'` vs `'a`).

/// One lexical token of a scrubbed code line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// The token text (an identifier/number word, or one punct char).
    pub text: &'a str,
    /// Whether the token is a word (identifier, keyword or number).
    pub is_word: bool,
}

/// Splits one scrubbed code line into word and punctuation tokens.
pub fn tokens(code: &str) -> Vec<Tok<'_>> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Tok {
                text: &code[start..i],
                is_word: true,
            });
        } else {
            out.push(Tok {
                text: &code[i..i + 1],
                is_word: false,
            });
            i += 1;
        }
    }
    out
}

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments and literal interiors blanked to spaces.
    /// String delimiters are kept so tokens never merge across them.
    pub code: String,
    /// The line with everything *except* comment text blanked to spaces.
    pub comment: String,
    /// Whether the line is inside test-only code.
    pub in_test: bool,
}

impl Line {
    /// Whether the line carries any code at all (non-whitespace outside
    /// comments and literals).
    pub fn has_code(&self) -> bool {
        self.code.chars().any(|c| !c.is_whitespace())
    }
}

/// An inline suppression pragma — `allow(<rule>) -- <reason>` after the
/// `countlint` marker in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// The rule id inside `allow(…)`.
    pub rule: String,
    /// The justification after `--` (always non-empty when parsed).
    pub reason: String,
}

/// A malformed pragma: the pragma marker was present but the rest could
/// not be parsed (bad verb, missing reason, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPragma {
    /// 1-based line of the broken pragma.
    pub line: usize,
    /// What was wrong with it.
    pub problem: String,
}

/// A scanned source file: the input every rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (the rules' scoping key).
    pub path: String,
    /// The scanned lines, in order.
    pub lines: Vec<Line>,
    /// Well-formed suppression pragmas, in line order.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas, surfaced as findings by the pragma-hygiene rule.
    pub bad_pragmas: Vec<BadPragma>,
}

/// Lexical state of the scrubber, carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    ByteStr,
    RawByteStr(u8),
    Char,
}

impl SourceFile {
    /// Scans `source` as the file at `path` (repo-relative).
    pub fn scan(path: &str, source: &str) -> SourceFile {
        let whole_file_test = path_is_testlike(path);
        let (code_text, comment_text) = scrub(source);
        let code_lines: Vec<&str> = code_text.split('\n').collect();
        let comment_lines: Vec<&str> = comment_text.split('\n').collect();
        let test_lines = test_regions(&code_lines);

        let mut lines = Vec::with_capacity(code_lines.len());
        for (i, code) in code_lines.iter().enumerate() {
            lines.push(Line {
                number: i + 1,
                code: (*code).to_string(),
                comment: comment_lines.get(i).copied().unwrap_or("").to_string(),
                in_test: whole_file_test || test_lines.get(i).copied().unwrap_or(false),
            });
        }

        let mut pragmas = Vec::new();
        let mut bad_pragmas = Vec::new();
        for line in &lines {
            // Doc comments (`//!`, `///`, `/** … */`) are documentation:
            // a pragma-shaped example inside one must neither suppress
            // findings nor count as a stale pragma.
            if matches!(
                line.comment.trim_start().chars().next(),
                Some('!') | Some('/') | Some('*')
            ) {
                continue;
            }
            match parse_pragma(&line.comment) {
                PragmaParse::None => {}
                PragmaParse::Ok { rule, reason } => pragmas.push(Pragma {
                    line: line.number,
                    rule,
                    reason,
                }),
                PragmaParse::Bad(problem) => bad_pragmas.push(BadPragma {
                    line: line.number,
                    problem,
                }),
            }
        }

        SourceFile {
            path: path.to_string(),
            lines,
            pragmas,
            bad_pragmas,
        }
    }

    /// The 1-based line a pragma on `pragma_line` suppresses: the pragma
    /// line itself when it carries code (trailing pragma), otherwise the
    /// next line that carries code.
    pub fn pragma_target(&self, pragma_line: usize) -> Option<usize> {
        let idx = pragma_line.checked_sub(1)?;
        let at = self.lines.get(idx)?;
        if at.has_code() {
            return Some(at.number);
        }
        self.lines[idx + 1..]
            .iter()
            .find(|l| l.has_code())
            .map(|l| l.number)
    }

    /// The line of the pragma (if any) that suppresses a finding of
    /// `rule` on `line`. Used by the driver both to drop the finding and
    /// to mark the pragma as earning its keep (`unused-pragma`).
    pub fn suppressing_pragma(&self, rule: &str, line: usize) -> Option<usize> {
        self.pragmas
            .iter()
            .find(|p| p.rule == rule && self.pragma_target(p.line) == Some(line))
            .map(|p| p.line)
    }

    /// Whether a finding of `rule` on `line` is suppressed by a pragma.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressing_pragma(rule, line).is_some()
    }
}

/// Whether every line of a file at this path is test/bench/example code.
fn path_is_testlike(path: &str) -> bool {
    path.split('/')
        .any(|part| matches!(part, "tests" | "benches" | "examples"))
}

/// Blanks comments and literal interiors out of `source`, returning
/// `(code_text, comment_text)` of identical shape (same length, same
/// newline positions).
fn scrub(source: &str) -> (String, String) {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0;

    // Pushes one source char into both streams according to whether it
    // is code, comment text, or a blanked literal interior.
    let emit = |code: &mut String, comment: &mut String, c: char, state: State| {
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
            return;
        }
        match state {
            State::Code => {
                code.push(c);
                comment.push(' ');
            }
            State::LineComment | State::BlockComment(_) => {
                code.push(' ');
                comment.push(c);
            }
            // Literal interiors are neither code nor comment.
            _ => {
                code.push(' ');
                comment.push(' ');
            }
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    emit(&mut code, &mut comment, ' ', State::Code);
                    emit(&mut code, &mut comment, ' ', State::Code);
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    emit(&mut code, &mut comment, ' ', State::Code);
                    emit(&mut code, &mut comment, ' ', State::Code);
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    emit(&mut code, &mut comment, '"', State::Code);
                    i += 1;
                }
                'r' | 'b' if !prev_is_ident(&chars, i) => {
                    if let Some((st, consumed)) = raw_or_byte_prefix(&chars, i) {
                        state = st;
                        for _ in 0..consumed {
                            emit(&mut code, &mut comment, ' ', State::Code);
                        }
                        // Keep one visible quote so tokens don't merge.
                        code.pop();
                        code.push('"');
                        i += consumed;
                    } else {
                        emit(&mut code, &mut comment, c, State::Code);
                        i += 1;
                    }
                }
                '\'' => {
                    if let Some(len) = char_literal_len(&chars, i) {
                        emit(&mut code, &mut comment, ' ', State::Code);
                        i += 1;
                        // Blank the interior; close on the final quote.
                        let mut rest = len - 1;
                        while rest > 0 && i < chars.len() {
                            let cc = chars[i];
                            let s = if rest == 1 { State::Code } else { State::Char };
                            let shown = if rest == 1 { ' ' } else { cc };
                            emit(&mut code, &mut comment, shown, s);
                            i += 1;
                            rest -= 1;
                        }
                    } else {
                        // A lifetime: keep the quote as code.
                        emit(&mut code, &mut comment, c, State::Code);
                        i += 1;
                    }
                }
                _ => {
                    emit(&mut code, &mut comment, c, State::Code);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                }
                emit(&mut code, &mut comment, c, State::LineComment);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    emit(&mut code, &mut comment, c, State::BlockComment(depth));
                    emit(&mut code, &mut comment, '*', State::BlockComment(depth));
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    emit(&mut code, &mut comment, c, State::BlockComment(depth));
                    emit(&mut code, &mut comment, '/', State::BlockComment(depth));
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Code
                    };
                    i += 2;
                } else {
                    emit(&mut code, &mut comment, c, State::BlockComment(depth));
                    i += 1;
                }
            }
            State::Str | State::ByteStr => {
                if c == '\\' && next.is_some() {
                    emit(&mut code, &mut comment, ' ', state);
                    emit(&mut code, &mut comment, ' ', state);
                    i += 2;
                } else if c == '"' {
                    emit(&mut code, &mut comment, '"', State::Code);
                    state = State::Code;
                    i += 1;
                } else {
                    emit(&mut code, &mut comment, c, state);
                    i += 1;
                }
            }
            State::RawStr(hashes) | State::RawByteStr(hashes) => {
                if c == '"' && raw_close(&chars, i, hashes) {
                    emit(&mut code, &mut comment, '"', State::Code);
                    for _ in 0..hashes {
                        emit(&mut code, &mut comment, ' ', State::Code);
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    emit(&mut code, &mut comment, c, state);
                    i += 1;
                }
            }
            State::Char => unreachable!("char literals are consumed inline"),
        }
    }
    (code, comment)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Detects `r"`, `r#"`, `b"`, `br"`, `br#"` … at `i`; returns the scrub
/// state and the number of chars in the opening (prefix + hashes + quote).
fn raw_or_byte_prefix(chars: &[char], i: usize) -> Option<(State, usize)> {
    let mut j = i;
    let mut raw = false;
    let mut byte = false;
    if chars.get(j) == Some(&'b') {
        byte = true;
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if !raw && !byte {
        return None;
    }
    let mut hashes = 0u8;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    let state = match (raw, byte) {
        (true, false) => State::RawStr(hashes),
        (true, true) => State::RawByteStr(hashes),
        (false, true) => State::ByteStr,
        (false, false) => unreachable!(),
    };
    Some((state, j - i + 1))
}

fn raw_close(chars: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Length (in chars, including both quotes) of a char literal starting at
/// the `'` at `i`, or `None` if it is a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: skip the escaped character itself (it may be
            // `'`, as in `'\''`), then scan to the closing quote.
            let mut j = i + 3;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then(|| j - i + 1)
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

/// Per-line test flags from `#[cfg(test)]` item tracking: brace-depth
/// bookkeeping over the scrubbed code, marking the body of every
/// `#[cfg(test)]` item.
fn test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // `Some(d)`: a `#[cfg(test)]` attribute was seen at depth `d` and we
    // are waiting for the item's `{` (or a `;` that ends a bodyless item).
    let mut armed: Option<i64> = None;
    // `Some(d)`: inside a test item's body; it ends when depth returns to `d`.
    let mut test_until: Option<i64> = None;

    for (idx, line) in code_lines.iter().enumerate() {
        if test_until.is_some() {
            flags[idx] = true;
        }
        if line.contains("#[cfg(test)]") && test_until.is_none() {
            armed = Some(depth);
            flags[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if let Some(d) = armed {
                        if depth == d && test_until.is_none() {
                            test_until = Some(d);
                            armed = None;
                            flags[idx] = true;
                        }
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_until {
                        if depth <= d {
                            test_until = None;
                        }
                    }
                }
                ';' => {
                    if let Some(d) = armed {
                        if depth == d && test_until.is_none() {
                            // Bodyless item (e.g. `#[cfg(test)] use …;`).
                            armed = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

enum PragmaParse {
    None,
    Ok { rule: String, reason: String },
    Bad(String),
}

/// Parses a suppression pragma (`allow(<rule>) -- <reason>` after the
/// marker) out of one line's comment text.
fn parse_pragma(comment: &str) -> PragmaParse {
    const MARKER: &str = "countlint:";
    let Some(at) = comment.find(MARKER) else {
        return PragmaParse::None;
    };
    let rest = comment[at + MARKER.len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return PragmaParse::Bad(format!(
            "expected `countlint: allow(<rule>) -- <reason>`, got {:?}",
            rest.trim_end()
        ));
    };
    let Some(close) = args.find(')') else {
        return PragmaParse::Bad("unclosed `allow(`".to_string());
    };
    let rule = args[..close].trim().to_string();
    if rule.is_empty() || rule.contains(',') {
        return PragmaParse::Bad("allow() takes exactly one rule id".to_string());
    }
    let tail = args[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return PragmaParse::Bad(format!(
            "pragma for rule `{rule}` is missing its `-- <reason>` justification"
        ));
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return PragmaParse::Bad(format!(
            "pragma for rule `{rule}` has an empty reason after `--`"
        ));
    }
    PragmaParse::Ok { rule, reason }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan("crates/x/src/lib.rs", src)
    }

    #[test]
    fn comments_and_strings_are_scrubbed_from_code() {
        let f = scan("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap here"));
        assert!(f.lines[1].code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_chars_are_scrubbed() {
        let f = scan(concat!(
            "let a = r#\"Instant \"quoted\" inside\"#;\n",
            "let b = b\"SystemTime\";\n",
            "let c = 'I'; let d: &'static str = \"x\";\n",
            "let e = '\\n';\n",
            "let real = Instant::now();\n",
        ));
        for i in 0..4 {
            assert!(!f.lines[i].code.contains("Instant"), "line {i}: {:?}", f.lines[i].code);
            assert!(!f.lines[i].code.contains("SystemTime"), "line {i}");
            assert!(!f.lines[i].code.contains('I'), "line {i}: {:?}", f.lines[i].code);
        }
        assert!(f.lines[2].code.contains("'static"), "lifetimes survive");
        assert!(f.lines[4].code.contains("Instant"));
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(!f.lines[0].code.contains("outer"));
        assert!(!f.lines[0].code.contains("still"));
        assert!(f.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn multiline_strings_stay_scrubbed() {
        let f = scan("let s = \"line one\nHashMap in line two\";\nHashMap;\n");
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[2].code.contains("HashMap"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn also_real() {}
";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace");
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn bodyless_cfg_test_item_does_not_poison_the_rest() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn real() {}\n";
        let f = scan(src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn testlike_paths_mark_every_line() {
        let f = SourceFile::scan("tests/integration.rs", "fn x() {}\n");
        assert!(f.lines[0].in_test);
        let f = SourceFile::scan("crates/bench/benches/engine.rs", "fn x() {}\n");
        assert!(f.lines[0].in_test);
    }

    #[test]
    fn pragma_parsing_and_targets() {
        let src = "\
// countlint: allow(some-rule) -- the reason
let x = 1;
let y = 2; // countlint: allow(other-rule) -- trailing reason
";
        let f = scan(src);
        assert_eq!(f.pragmas.len(), 2);
        assert_eq!(f.pragmas[0].rule, "some-rule");
        assert_eq!(f.pragmas[0].reason, "the reason");
        assert_eq!(f.pragma_target(1), Some(2));
        assert_eq!(f.pragma_target(3), Some(3));
        assert!(f.is_suppressed("some-rule", 2));
        assert!(f.is_suppressed("other-rule", 3));
        assert!(!f.is_suppressed("some-rule", 3));
    }

    #[test]
    fn stacked_pragmas_target_the_same_line() {
        let src = "\
// countlint: allow(rule-a) -- one
// countlint: allow(rule-b) -- two
let x = 1;
";
        let f = scan(src);
        assert!(f.is_suppressed("rule-a", 3));
        assert!(f.is_suppressed("rule-b", 3));
    }

    #[test]
    fn malformed_pragmas_are_reported_not_honored() {
        let src = "\
// countlint: allow(no-reason)
// countlint: deny(x) -- wrong verb
// countlint: allow(a, b) -- two rules
let s = \"countlint: allow(in-a-string) -- not a pragma\";
";
        let f = scan(src);
        assert_eq!(f.pragmas.len(), 0);
        assert_eq!(f.bad_pragmas.len(), 3);
        assert!(f.bad_pragmas[0].problem.contains("missing"));
    }

    #[test]
    fn pragma_in_string_literal_is_ignored() {
        let f = scan("let s = \"countlint: allow(x) -- nope\";\n");
        assert!(f.pragmas.is_empty());
        assert!(f.bad_pragmas.is_empty());
    }

    #[test]
    fn pragma_in_doc_comment_is_documentation_not_suppression() {
        let src = "\
//! // countlint: allow(rule-a) -- an example in module docs
/// // countlint: allow(rule-b) -- an example in item docs
/** countlint: allow(rule-c) -- block doc */
// countlint: allow(rule-d) -- a real pragma
let x = 1;
";
        let f = scan(src);
        assert_eq!(f.pragmas.len(), 1, "{:?}", f.pragmas);
        assert_eq!(f.pragmas[0].rule, "rule-d");
        assert!(f.bad_pragmas.is_empty());
    }

    #[test]
    fn escaped_quote_char_literal_is_not_a_string_opener() {
        // `'\''` must scan as a 4-char literal; the old scanner stopped at
        // the escaped quote and mis-lexed everything after it.
        let f = scan("let q = '\\''; let s = \"HashMap\"; let t = HashMap;\n");
        assert!(
            !f.lines[0].code.contains("\"HashMap\""),
            "literal interior must be blanked: {:?}",
            f.lines[0].code
        );
        assert!(f.lines[0].code.contains("let t = HashMap;"));
        let f = scan("let b = '\\\\'; let u = '\\u{7FFF}'; Instant::now();\n");
        assert!(f.lines[0].code.contains("Instant::now()"));
        assert!(!f.lines[0].code.contains("7FFF"));
    }

    #[test]
    fn raw_strings_with_multi_hash_guards() {
        let f = scan(concat!(
            "let a = r##\"inner \"# quote guard then HashMap\"##;\n",
            "let b = br#\"bytes \" here\"#;\n",
            "HashMap;\n"
        ));
        assert!(!f.lines[0].code.contains("HashMap"), "{:?}", f.lines[0].code);
        assert!(!f.lines[1].code.contains("bytes"));
        assert!(f.lines[2].code.contains("HashMap"));
    }

    #[test]
    fn lifetime_ticks_do_not_open_char_literals() {
        let f = scan("fn f<'a, 'b: 'a>(x: &'a str, y: &'b [u8]) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("<'a, 'b: 'a>"));
        assert!(f.lines[0].code.contains("{ x }"), "{:?}", f.lines[0].code);
    }

    #[test]
    fn deeply_nested_block_comments() {
        let f = scan("/* a /* b /* c */ b */ a */ let ok = 1; /* tail */\n");
        assert!(f.lines[0].code.contains("let ok = 1;"));
        assert!(!f.lines[0].code.contains('a'));
        assert!(!f.lines[0].code.contains("tail"));
    }

    #[test]
    fn tokens_split_words_and_punct() {
        let toks = tokens("Benchmark::Loop { iters }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, ["Benchmark", ":", ":", "Loop", "{", "iters", "}"]);
        assert!(toks[0].is_word && !toks[1].is_word);
    }
}
