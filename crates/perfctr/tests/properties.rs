//! Property-based tests of the perfctr model.

use counterlab_cpu::mix::InstMix;
use counterlab_cpu::pmu::{CountMode, Event};
use counterlab_cpu::uarch::Processor;
use counterlab_kernel::config::{KernelConfig, SkidModel};
use counterlab_perfctr::{Perfctr, PerfctrOptions};
use proptest::prelude::*;

fn arb_processor() -> impl Strategy<Value = Processor> {
    prop_oneof![
        Just(Processor::PentiumD),
        Just(Processor::Core2Duo),
        Just(Processor::AthlonK8),
    ]
}

fn booted(p: Processor, tsc_on: bool, seed: u64) -> Perfctr {
    Perfctr::boot(
        p,
        KernelConfig::default()
            .with_hz(0)
            .with_skid(SkidModel::disabled()),
        PerfctrOptions { tsc_on, seed },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fast read path never enters the kernel, for any counter count
    /// the processor supports and any seed.
    #[test]
    fn fast_read_never_syscalls(
        p in arb_processor(),
        n in 1usize..4,
        reads in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n = n.min(p.uarch().programmable_counters);
        let mut pc = booted(p, true, seed);
        let events: Vec<_> = Event::ALL[..n]
            .iter()
            .map(|e| (*e, CountMode::UserAndKernel))
            .collect();
        pc.control(&events).unwrap();
        pc.start().unwrap();
        let before = pc.system().syscall_count();
        for _ in 0..reads {
            let s = pc.read_ctrs().unwrap();
            prop_assert_eq!(s.pmcs.len(), n);
            prop_assert!(s.tsc.is_some());
        }
        prop_assert_eq!(pc.system().syscall_count(), before);
    }

    /// The slow read path always syscalls — once per read.
    #[test]
    fn slow_read_always_syscalls(p in arb_processor(), reads in 1usize..6, seed in any::<u64>()) {
        let mut pc = booted(p, false, seed);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)]).unwrap();
        pc.start().unwrap();
        let before = pc.system().syscall_count();
        for _ in 0..reads {
            prop_assert!(pc.read_ctrs().unwrap().tsc.is_none());
        }
        prop_assert_eq!(pc.system().syscall_count(), before + reads as u64);
    }

    /// Measured benchmark work is exact regardless of the window costs:
    /// (read after work) − (read before work) − (null window) == work.
    #[test]
    fn window_cost_cancels(
        p in arb_processor(),
        work in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let run = |work: u64| {
            let mut pc = booted(p, true, seed);
            pc.control(&[(Event::InstructionsRetired, CountMode::UserOnly)]).unwrap();
            pc.start().unwrap();
            let c0 = pc.read_ctrs().unwrap().pmcs[0];
            pc.system_mut().run_user_mix(&InstMix::straight_line(work));
            let c1 = pc.read_ctrs().unwrap().pmcs[0];
            c1 - c0
        };
        let null = run(0);
        let with_work = run(work);
        prop_assert_eq!(with_work - null, work);
    }

    /// Counter values are monotone across reads while running.
    #[test]
    fn reads_monotone(p in arb_processor(), tsc_on in any::<bool>(), seed in any::<u64>()) {
        let mut pc = booted(p, tsc_on, seed);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)]).unwrap();
        pc.start().unwrap();
        let mut last = 0u64;
        for _ in 0..5 {
            let v = pc.read_ctrs().unwrap().pmcs[0];
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// Stopping freezes the counters: reads after stop return stable
    /// values.
    #[test]
    fn stop_freezes(p in arb_processor(), seed in any::<u64>()) {
        let mut pc = booted(p, true, seed);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)]).unwrap();
        pc.start().unwrap();
        pc.system_mut().run_user_mix(&InstMix::straight_line(1_000));
        pc.stop().unwrap();
        let a = pc.read_ctrs().unwrap().pmcs[0];
        pc.system_mut().run_user_mix(&InstMix::straight_line(50_000));
        let b = pc.read_ctrs().unwrap().pmcs[0];
        prop_assert_eq!(a, b);
    }
}
