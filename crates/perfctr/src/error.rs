use std::error::Error;
use std::fmt;

use counterlab_cpu::CpuError;
use counterlab_kernel::KernelError;

/// Errors from the perfctr library and kernel extension.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PerfctrError {
    /// Propagated kernel/CPU failure.
    Kernel(KernelError),
    /// More counters requested than the processor provides.
    TooManyCounters {
        /// Counters requested.
        requested: usize,
        /// Counters available.
        available: usize,
    },
    /// An operation that requires a prior `control` call.
    NotConfigured,
}

impl fmt::Display for PerfctrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfctrError::Kernel(e) => write!(f, "perfctr: {e}"),
            PerfctrError::TooManyCounters {
                requested,
                available,
            } => write!(
                f,
                "perfctr: requested {requested} counters but only {available} exist"
            ),
            PerfctrError::NotConfigured => {
                write!(f, "perfctr: no counters configured (call control first)")
            }
        }
    }
}

impl Error for PerfctrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PerfctrError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for PerfctrError {
    fn from(e: KernelError) -> Self {
        PerfctrError::Kernel(e)
    }
}

impl From<CpuError> for PerfctrError {
    fn from(e: CpuError) -> Self {
        PerfctrError::Kernel(KernelError::Cpu(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = PerfctrError::from(CpuError::RdpmcNotEnabled);
        assert!(e.to_string().contains("perfctr"));
        assert!(Error::source(&e).is_some());
        let t = PerfctrError::TooManyCounters {
            requested: 5,
            available: 2,
        };
        assert!(t.to_string().contains('5'));
        assert!(Error::source(&PerfctrError::NotConfigured).is_none());
    }
}
