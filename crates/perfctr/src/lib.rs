//! # counterlab-perfctr
//!
//! A model of the **perfctr** kernel extension (Mikael Pettersson's patch,
//! version 2.6.29) and its user-space library **libperfctr** — the `pc`
//! interface of the paper *“Accuracy of Performance Counter Measurements”*.
//!
//! perfctr's defining feature, faithfully reproduced here, is the **fast
//! user-mode read**: the kernel maps a per-thread state page into user
//! space and enables `CR4.PCE`, so reading the virtualized counters is a
//! handful of user-mode instructions (`rdtsc` + `rdpmc` per counter) with
//! no kernel crossing. The catch — and the paper's Figure 4 finding — is
//! that the fast path needs the TSC in the measurement set; disabling the
//! TSC (“one less counter to read”, seemingly cheaper) forces every read
//! through a system call and *increases* the measurement error by an order
//! of magnitude.
//!
//! Entry point: [`vperfctr::Perfctr`]. Calibrated path costs:
//! [`costs::PerfctrCosts`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod vperfctr;

mod error;

pub use error::PerfctrError;
pub use vperfctr::{CounterSample, Perfctr, PerfctrOptions};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, PerfctrError>;
