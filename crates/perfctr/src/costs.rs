//! Calibrated instruction costs of the perfctr call paths.
//!
//! Every libperfctr operation is modeled as instruction mixes around a
//! *capture point* (the instant the measured counter starts, stops, or is
//! sampled). Instructions after the opening call's capture point and before
//! the closing call's capture point fall inside the measurement window and
//! are the *measurement error* the paper studies.
//!
//! The base constants below are calibrated on the Core 2 Duo so that the
//! paper's headline numbers come out (see EXPERIMENTS.md): e.g. the fast
//! user-mode read costs ≈51 pre + ≈58 post user instructions, giving the
//! read-read median of ≈109 instructions the paper reports for CD
//! (Figure 4), while Table 3's `pc` start-read lands near 163 user+kernel
//! instructions. Platform factors scale the paths the way the paper's
//! per-processor figures differ (e.g. K8's read-read median of 84).

use counterlab_cpu::uarch::Processor;

pub use counterlab_kernel::syscall::PathCost;

/// The complete perfctr cost model for one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfctrCosts {
    /// `vperfctr_open` + mmap of the vperfctr page (outside any window).
    pub open: PathCost,
    /// `vperfctr_control` programming the event selections.
    pub control: PathCost,
    /// Start: capture = the `WRMSR` enabling the measured counter (last).
    pub start: PathCost,
    /// Stop: capture = the `WRMSR` disabling the measured counter (first).
    pub stop: PathCost,
    /// Reset: zeroes counter values and accumulated sums.
    pub reset: PathCost,
    /// Fast user-mode read (TSC enabled): `rdtsc` + `rdpmc` loop against
    /// the mapped vperfctr page — no kernel entry at all.
    pub fast_read: PathCost,
    /// Slow syscall read (TSC disabled): the kernel samples the counters.
    pub slow_read: PathCost,
    /// Extra user instructions per additional counter on the fast read's
    /// pre side (loading the page entry).
    pub fast_read_per_counter_pre: u64,
    /// Extra user instructions per additional counter on the fast read's
    /// post side (`rdpmc` + accumulate).
    pub fast_read_per_counter_post: u64,
    /// Extra kernel instructions per additional counter on each side of the
    /// slow read.
    pub slow_read_per_counter: u64,
    /// Extra kernel instructions per additional counter when starting
    /// (the extra counters are enabled *before* the measured one, so they
    /// land on the pre side) and a small bookkeeping tail on the post side.
    pub start_per_counter_pre: u64,
    /// Post-side bookkeeping per extra counter on start.
    pub start_per_counter_post: u64,
    /// Pre-side bookkeeping per extra counter on stop.
    pub stop_per_counter_pre: u64,
    /// Kernel instructions perfctr's timer-tick hook adds per tick
    /// (per-thread virtualization bookkeeping).
    pub tick_extra: u64,
    /// Upper bound of per-call user-mode jitter (alignment/branching
    /// variation in the library).
    pub user_jitter: u64,
    /// Upper bound of per-call kernel-mode jitter (locking, list walks).
    pub kernel_jitter: u64,
}

/// Core 2 Duo base cost model.
const BASE: PerfctrCosts = PerfctrCosts {
    open: PathCost {
        wrapper_pre: 60,
        handler_pre: 200,
        handler_post: 200,
        wrapper_post: 40,
    },
    control: PathCost {
        wrapper_pre: 30,
        handler_pre: 80,
        handler_post: 70,
        wrapper_post: 20,
    },
    start: PathCost {
        wrapper_pre: 14,
        handler_pre: 120,
        handler_post: 26,
        wrapper_post: 20,
    },
    stop: PathCost {
        wrapper_pre: 15,
        handler_pre: 60,
        handler_post: 90,
        wrapper_post: 12,
    },
    reset: PathCost {
        wrapper_pre: 12,
        handler_pre: 80,
        handler_post: 80,
        wrapper_post: 10,
    },
    fast_read: PathCost {
        wrapper_pre: 51,
        handler_pre: 0,
        handler_post: 0,
        wrapper_post: 58,
    },
    slow_read: PathCost {
        wrapper_pre: 123,
        handler_pre: 675,
        handler_post: 620,
        wrapper_post: 107,
    },
    fast_read_per_counter_pre: 6,
    fast_read_per_counter_post: 7,
    slow_read_per_counter: 30,
    start_per_counter_pre: 18,
    start_per_counter_post: 4,
    stop_per_counter_pre: 22,
    tick_extra: 4_000,
    user_jitter: 6,
    kernel_jitter: 30,
};

impl PerfctrCosts {
    /// The cost model for a processor. Kernel paths scale with the
    /// platform's kernel code generation; the fast read's user path scales
    /// the way Figure 4 vs Figure 5 differ (CD ≈ 109, K8 ≈ 84 for
    /// read-read).
    pub fn for_processor(processor: Processor) -> Self {
        let (kernel_pct, user_pct) = match processor {
            Processor::PentiumD => (120, 110),
            Processor::Core2Duo => (100, 100),
            Processor::AthlonK8 => (85, 77),
        };
        let mut c = BASE;
        c.open = c.open.scale_kernel(kernel_pct);
        c.control = c.control.scale_kernel(kernel_pct);
        c.start = c.start.scale_kernel(kernel_pct);
        c.stop = c.stop.scale_kernel(kernel_pct);
        c.reset = c.reset.scale_kernel(kernel_pct);
        c.slow_read = c.slow_read.scale_kernel(kernel_pct);
        c.fast_read = c.fast_read.scale_user(user_pct);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cd_fast_read_window_is_about_109() {
        let c = PerfctrCosts::for_processor(Processor::Core2Duo);
        let rr = c.fast_read.wrapper_post + c.fast_read.wrapper_pre;
        assert!((100..=120).contains(&rr), "rr = {rr}");
    }

    #[test]
    fn k8_fast_read_window_is_about_84() {
        let c = PerfctrCosts::for_processor(Processor::AthlonK8);
        let rr = c.fast_read.wrapper_post + c.fast_read.wrapper_pre;
        assert!((78..=90).contains(&rr), "rr = {rr}");
    }

    #[test]
    fn fast_read_never_enters_kernel() {
        for p in Processor::ALL {
            let c = PerfctrCosts::for_processor(p);
            assert_eq!(c.fast_read.handler_pre, 0);
            assert_eq!(c.fast_read.handler_post, 0);
        }
    }

    #[test]
    fn slow_read_is_dramatically_heavier() {
        // Figure 4: TSC off pushes read-read from ~110 to ~1700.
        let c = PerfctrCosts::for_processor(Processor::Core2Duo);
        let fast = c.fast_read.wrapper_pre + c.fast_read.wrapper_post;
        let slow = c.slow_read.wrapper_pre
            + c.slow_read.handler_pre
            + c.slow_read.handler_post
            + c.slow_read.wrapper_post;
        assert!(slow > 10 * fast, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn kernel_scaling_ordering() {
        let pd = PerfctrCosts::for_processor(Processor::PentiumD);
        let cd = PerfctrCosts::for_processor(Processor::Core2Duo);
        let k8 = PerfctrCosts::for_processor(Processor::AthlonK8);
        assert!(pd.start.handler_pre > cd.start.handler_pre);
        assert!(cd.start.handler_pre > k8.start.handler_pre);
    }

    #[test]
    fn scale_helpers() {
        let p = PathCost {
            wrapper_pre: 100,
            handler_pre: 100,
            handler_post: 100,
            wrapper_post: 100,
        };
        let k = p.scale_kernel(50);
        assert_eq!(k.handler_pre, 50);
        assert_eq!(k.wrapper_pre, 100);
        let u = p.scale_user(110);
        assert_eq!(u.wrapper_post, 110);
        assert_eq!(u.handler_post, 100);
    }
}
