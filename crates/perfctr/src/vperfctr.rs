//! The libperfctr user-space API over the perfctr kernel extension.
//!
//! Modeled on Mikael Pettersson's perfctr 2.6.29 (the version the paper
//! uses): a process opens its per-thread *vperfctr*, programs counters with
//! a control call, and then reads them either through the **fast user-mode
//! path** — `rdtsc` + `rdpmc` against a kernel-mapped state page, possible
//! only while the TSC is part of the measurement set — or through a system
//! call when the TSC is disabled. Figure 4 of the paper hinges on exactly
//! this asymmetry.

use counterlab_cpu::pmu::{CountMode, Event, PmcConfig};
use counterlab_cpu::uarch::Processor;
use counterlab_kernel::config::KernelConfig;
use counterlab_kernel::syscall::{lib_syscall, user_code_mix};
use counterlab_kernel::system::System;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::costs::{PathCost, PerfctrCosts};
use crate::{PerfctrError, Result};

/// Options for opening a vperfctr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfctrOptions {
    /// Whether the TSC is included in the measurement set. Enabling it is
    /// what unlocks the fast user-mode read (§4.1 of the paper).
    pub tsc_on: bool,
    /// Seed for the library's per-call cost jitter.
    pub seed: u64,
}

impl Default for PerfctrOptions {
    fn default() -> Self {
        PerfctrOptions {
            tsc_on: true,
            seed: 0x9E37_79B9,
        }
    }
}

/// Counter values returned by a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Programmable counter values, in configuration order.
    pub pmcs: Vec<u64>,
    /// TSC value (present when the TSC is enabled in the control).
    pub tsc: Option<u64>,
}

/// A per-thread virtual performance counter handle (libperfctr's
/// `struct vperfctr`).
///
/// # Examples
///
/// ```
/// use counterlab_perfctr::vperfctr::{Perfctr, PerfctrOptions};
/// use counterlab_cpu::prelude::*;
/// use counterlab_kernel::prelude::*;
///
/// # fn main() -> Result<(), counterlab_perfctr::PerfctrError> {
/// let mut pc = Perfctr::boot(
///     Processor::Core2Duo,
///     KernelConfig::default(),
///     PerfctrOptions::default(),
/// )?;
/// pc.control(&[(Event::InstructionsRetired, CountMode::UserOnly)])?;
/// pc.start()?;
/// let before = pc.read_ctrs()?;
/// // ... benchmark would run here ...
/// let after = pc.read_ctrs()?;
/// assert!(after.pmcs[0] >= before.pmcs[0]);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct Perfctr {
    sys: System,
    costs: PerfctrCosts,
    rng: StdRng,
    tsc_on: bool,
    events: Vec<(Event, CountMode)>,
    running: bool,
}

impl Perfctr {
    /// Boots a fresh system with the perfctr kernel extension loaded and
    /// opens the calling thread's vperfctr.
    ///
    /// # Errors
    ///
    /// Propagates CPU faults from the open syscall (none in normal use).
    pub fn boot(
        processor: Processor,
        kernel: KernelConfig,
        options: PerfctrOptions,
    ) -> Result<Self> {
        let sys = System::new(processor, kernel);
        Self::attach(sys, options)
    }

    /// Attaches perfctr to an existing system (loads the extension, opens
    /// the vperfctr, maps the state page, and sets `CR4.PCE` so user-mode
    /// `RDPMC` works).
    ///
    /// # Errors
    ///
    /// Propagates CPU faults from the open syscall.
    pub fn attach(mut sys: System, options: PerfctrOptions) -> Result<Self> {
        let costs = PerfctrCosts::for_processor(sys.machine().processor());
        sys.set_tick_extension_extra(costs.tick_extra);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let path = jittered(&costs.open, &costs, &mut rng);
        lib_syscall(
            &mut sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                // The vperfctr open enables user-mode RDPMC for the process.
                m.set_cr4_pce(true)?;
                Ok(())
            },
        )?;
        Ok(Perfctr {
            sys,
            costs,
            rng,
            tsc_on: options.tsc_on,
            events: Vec::new(),
            running: false,
        })
    }

    /// Returns the handle to the state a fresh [`Perfctr::boot`] with the
    /// same processor and the given `kernel`/`options` would produce,
    /// reusing the booted system's allocations.
    ///
    /// This replays [`Perfctr::attach`] — extension tick hook, jittered
    /// open syscall, `CR4.PCE` enable — on the reseeded system, so the
    /// handle is bit-identical to a fresh boot (the measurement-session
    /// reuse path).
    ///
    /// # Errors
    ///
    /// Propagates CPU faults from the open syscall.
    pub fn reseed(&mut self, kernel: &KernelConfig, options: PerfctrOptions) -> Result<()> {
        self.sys.reseed(kernel);
        self.sys.set_tick_extension_extra(self.costs.tick_extra);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let path = jittered(&self.costs.open, &self.costs, &mut rng);
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                m.set_cr4_pce(true)?;
                Ok(())
            },
        )?;
        self.rng = rng;
        self.tsc_on = options.tsc_on;
        self.events.clear();
        self.running = false;
        Ok(())
    }

    /// The underlying system (to run benchmark code between counter calls).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable system access.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Consumes the handle, returning the system.
    pub fn into_system(self) -> System {
        self.sys
    }

    /// The cost model in use.
    pub fn costs(&self) -> &PerfctrCosts {
        &self.costs
    }

    /// Whether the TSC is part of the measurement set.
    pub fn tsc_enabled(&self) -> bool {
        self.tsc_on
    }

    /// Whether counting is currently started.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Number of programmed counters.
    pub fn counter_count(&self) -> usize {
        self.events.len()
    }

    /// `vperfctr_control`: programs the given events (disabled). Must be
    /// called before [`Perfctr::start`].
    ///
    /// # Errors
    ///
    /// [`PerfctrError::TooManyCounters`] if the processor lacks registers;
    /// CPU faults propagate.
    pub fn control(&mut self, events: &[(Event, CountMode)]) -> Result<()> {
        let avail = self.sys.machine().pmu().programmable_count();
        if events.len() > avail {
            return Err(PerfctrError::TooManyCounters {
                requested: events.len(),
                available: avail,
            });
        }
        let path = jittered(&self.costs.control, &self.costs, &mut self.rng);
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for (i, (event, mode)) in events.iter().enumerate() {
                    m.pmu_mut().program(i, PmcConfig::disabled(*event, *mode))?;
                }
                Ok(())
            },
        )?;
        self.events.clear();
        self.events.extend_from_slice(events);
        self.running = false;
        Ok(())
    }

    /// Starts counting. The measured counter (index 0) is enabled *last*,
    /// so the extra counters' enable work lands before the capture point.
    ///
    /// # Errors
    ///
    /// [`PerfctrError::NotConfigured`] without a prior
    /// [`Perfctr::control`]; CPU faults propagate.
    pub fn start(&mut self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PerfctrError::NotConfigured);
        }
        let n = self.events.len() as u64;
        let mut path = jittered(&self.costs.start, &self.costs, &mut self.rng);
        path.handler_pre += self.costs.start_per_counter_pre * (n - 1);
        path.handler_post += self.costs.start_per_counter_post * (n - 1);
        let count = self.events.len();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                // Enable extras first (their cost is in handler_pre), the
                // measured counter last: its enable is the capture point.
                for i in (0..count).rev() {
                    m.pmu_mut().set_enabled(i, true)?;
                }
                Ok(())
            },
        )?;
        self.running = true;
        Ok(())
    }

    /// Stops counting. The measured counter is disabled *first* (capture
    /// point), then the extras.
    ///
    /// # Errors
    ///
    /// [`PerfctrError::NotConfigured`] without configuration.
    pub fn stop(&mut self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PerfctrError::NotConfigured);
        }
        let n = self.events.len() as u64;
        let mut path = jittered(&self.costs.stop, &self.costs, &mut self.rng);
        path.handler_post += self.costs.stop_per_counter_pre * (n - 1);
        let count = self.events.len();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for i in 0..count {
                    m.pmu_mut().set_enabled(i, false)?;
                }
                Ok(())
            },
        )?;
        self.running = false;
        Ok(())
    }

    /// Resets all counter values (and the accumulated sums in the kernel
    /// state page) to zero.
    ///
    /// # Errors
    ///
    /// [`PerfctrError::NotConfigured`] without configuration.
    pub fn reset(&mut self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PerfctrError::NotConfigured);
        }
        let path = jittered(&self.costs.reset, &self.costs, &mut self.rng);
        let count = self.events.len();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for i in 0..count {
                    m.pmu_mut().write_pmc(i, 0)?;
                }
                Ok(())
            },
        )?;
        Ok(())
    }

    /// Reads the counters.
    ///
    /// With the TSC enabled this is the **fast user-mode path**: pure user
    /// instructions (`rdtsc`, then one `rdpmc` per counter against the
    /// mapped vperfctr page) and no kernel entry. With the TSC disabled,
    /// perfctr cannot use that path and falls back to a system call — the
    /// reason disabling the TSC *increases* the error in Figure 4.
    ///
    /// # Errors
    ///
    /// [`PerfctrError::NotConfigured`] without configuration; CPU faults
    /// propagate.
    pub fn read_ctrs(&mut self) -> Result<CounterSample> {
        let mut pmcs = Vec::with_capacity(self.events.len());
        let tsc = self.read_ctrs_into(&mut pmcs)?;
        Ok(CounterSample { pmcs, tsc })
    }

    /// [`Perfctr::read_ctrs`] into a caller-owned buffer (cleared first),
    /// returning the TSC sample when the fast path took one: the
    /// allocation-free variant for measurement hot loops. The simulated
    /// call path is identical.
    ///
    /// # Errors
    ///
    /// As [`Perfctr::read_ctrs`].
    pub fn read_ctrs_into(&mut self, pmcs: &mut Vec<u64>) -> Result<Option<u64>> {
        if self.events.is_empty() {
            return Err(PerfctrError::NotConfigured);
        }
        pmcs.clear();
        if self.tsc_on {
            self.fast_read(pmcs).map(Some)
        } else {
            self.slow_read(pmcs).map(|()| None)
        }
    }

    fn fast_read(&mut self, pmcs: &mut Vec<u64>) -> Result<u64> {
        let n = self.events.len() as u64;
        let uj = self.rng.gen_range(0..=self.costs.user_jitter);
        let pre = self.costs.fast_read.wrapper_pre
            + self.costs.fast_read_per_counter_pre * (n - 1)
            + uj / 2;
        let post = self.costs.fast_read.wrapper_post + uj - uj / 2;
        let count = self.events.len();
        let per_counter_post = self.costs.fast_read_per_counter_post;

        // Pre side: wrapper prologue + rdtsc + per-counter page loads.
        self.sys.run_user_mix(&user_code_mix(pre.saturating_sub(1)));
        let tsc = self.sys.machine().rdtsc();
        self.sys
            .run_user_mix(&counterlab_cpu::mix::MixBuilder::new().rdtsc(1).build());
        // Capture of the measured counter.
        pmcs.push(self.sys.machine().rdpmc(0)?);
        // Remaining counters: each costs rdpmc + accumulate instructions
        // that land after the measured counter's capture.
        for i in 1..count {
            let per = counterlab_cpu::mix::MixBuilder::new()
                .alu(per_counter_post - 1)
                .rdpmc(1)
                .build();
            self.sys.run_user_mix(&per);
            pmcs.push(self.sys.machine().rdpmc(i)?);
        }
        // Post side: the measured counter's own rdpmc + accumulation + epilogue.
        let post_mix = counterlab_cpu::mix::MixBuilder::new()
            .alu(post.saturating_sub(3))
            .rdpmc(1)
            .stores(2)
            .build();
        self.sys.run_user_mix(&post_mix);
        Ok(tsc)
    }

    fn slow_read(&mut self, pmcs: &mut Vec<u64>) -> Result<()> {
        let n = self.events.len() as u64;
        let mut path = jittered(&self.costs.slow_read, &self.costs, &mut self.rng);
        path.handler_pre += self.costs.slow_read_per_counter * (n - 1);
        path.handler_post += self.costs.slow_read_per_counter * (n - 1);
        let count = self.events.len();
        lib_syscall(
            &mut self.sys,
            path.wrapper_pre,
            path.handler_pre,
            path.handler_post,
            path.wrapper_post,
            |m| {
                for i in 0..count {
                    pmcs.push(m.pmu().read_pmc(i)?);
                }
                Ok(())
            },
        )?;
        Ok(())
    }
}

/// Fast user-mode reads without kernel support would fault; this helper
/// exposes the pure-user read skeleton for tests of the mechanism.
pub fn fast_read_window(costs: &PerfctrCosts, counters: u64) -> (u64, u64) {
    let pre =
        costs.fast_read.wrapper_pre + costs.fast_read_per_counter_pre * counters.saturating_sub(1);
    let post = costs.fast_read.wrapper_post
        + costs.fast_read_per_counter_post * counters.saturating_sub(1);
    (pre, post)
}

/// Applies per-call jitter to a path.
fn jittered(path: &PathCost, costs: &PerfctrCosts, rng: &mut StdRng) -> PathCost {
    let uj = rng.gen_range(0..=costs.user_jitter);
    let kj = rng.gen_range(0..=costs.kernel_jitter);
    PathCost {
        wrapper_pre: path.wrapper_pre + uj / 2,
        handler_pre: path.handler_pre + kj / 2,
        handler_post: path.handler_post + kj - kj / 2,
        wrapper_post: path.wrapper_post + uj - uj / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> KernelConfig {
        KernelConfig::default()
            .with_hz(0)
            .with_skid(counterlab_kernel::config::SkidModel::disabled())
    }

    fn booted(tsc_on: bool) -> Perfctr {
        Perfctr::boot(
            Processor::Core2Duo,
            quiet(),
            PerfctrOptions { tsc_on, seed: 1 },
        )
        .unwrap()
    }

    #[test]
    fn open_enables_user_rdpmc() {
        let pc = booted(true);
        assert!(pc.system().machine().cr4_pce());
    }

    #[test]
    fn control_programs_disabled_counters() {
        let mut pc = booted(true);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserOnly)])
            .unwrap();
        let cfg = pc.system().machine().pmu().config(0).unwrap().unwrap();
        assert!(!cfg.enabled);
        assert_eq!(cfg.event, Event::InstructionsRetired);
        assert!(!pc.is_running());
        assert_eq!(pc.counter_count(), 1);
    }

    #[test]
    fn start_stop_toggle_counting() {
        let mut pc = booted(true);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserOnly)])
            .unwrap();
        pc.start().unwrap();
        assert!(pc.is_running());
        assert!(
            pc.system()
                .machine()
                .pmu()
                .config(0)
                .unwrap()
                .unwrap()
                .enabled
        );
        pc.stop().unwrap();
        assert!(!pc.is_running());
        assert!(
            !pc.system()
                .machine()
                .pmu()
                .config(0)
                .unwrap()
                .unwrap()
                .enabled
        );
    }

    #[test]
    fn too_many_counters_rejected() {
        let mut pc = booted(true);
        let events: Vec<_> = (0..3)
            .map(|_| (Event::InstructionsRetired, CountMode::UserOnly))
            .collect();
        // Core 2 has two programmable counters.
        assert!(matches!(
            pc.control(&events),
            Err(PerfctrError::TooManyCounters {
                requested: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn read_before_control_rejected() {
        let mut pc = booted(true);
        assert!(matches!(pc.read_ctrs(), Err(PerfctrError::NotConfigured)));
        assert!(matches!(pc.start(), Err(PerfctrError::NotConfigured)));
        assert!(matches!(pc.stop(), Err(PerfctrError::NotConfigured)));
        assert!(matches!(pc.reset(), Err(PerfctrError::NotConfigured)));
    }

    #[test]
    fn fast_read_stays_in_user_mode() {
        let mut pc = booted(true);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
            .unwrap();
        pc.start().unwrap();
        let syscalls_before = pc.system().syscall_count();
        let s = pc.read_ctrs().unwrap();
        assert_eq!(pc.system().syscall_count(), syscalls_before, "no syscall");
        assert!(s.tsc.is_some());
    }

    #[test]
    fn slow_read_uses_syscall() {
        let mut pc = booted(false);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
            .unwrap();
        pc.start().unwrap();
        let syscalls_before = pc.system().syscall_count();
        let s = pc.read_ctrs().unwrap();
        assert_eq!(pc.system().syscall_count(), syscalls_before + 1);
        assert!(s.tsc.is_none());
    }

    #[test]
    fn null_window_error_fast_read_about_109() {
        // The read-read window on CD: two fast reads back to back with a
        // user-mode counter should count roughly the paper's 109
        // instructions (post of the 1st read + pre of the 2nd).
        let mut pc = booted(true);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserOnly)])
            .unwrap();
        pc.start().unwrap();
        let c0 = pc.read_ctrs().unwrap().pmcs[0];
        let c1 = pc.read_ctrs().unwrap().pmcs[0];
        let err = c1 - c0;
        assert!((95..=135).contains(&err), "rr error = {err}");
    }

    #[test]
    fn tsc_off_inflates_read_error() {
        let run = |tsc_on: bool| {
            let mut pc = booted(tsc_on);
            pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
                .unwrap();
            pc.start().unwrap();
            let c0 = pc.read_ctrs().unwrap().pmcs[0];
            let c1 = pc.read_ctrs().unwrap().pmcs[0];
            c1 - c0
        };
        let on = run(true);
        let off = run(false);
        assert!(off > 10 * on, "TSC off {off} should dwarf TSC on {on}");
        assert!((1_400..=2_100).contains(&off), "off = {off}");
    }

    #[test]
    fn extra_counters_grow_fast_read_window() {
        let run = |n: usize| {
            let mut pc = Perfctr::boot(
                Processor::AthlonK8,
                quiet(),
                PerfctrOptions {
                    tsc_on: true,
                    seed: 3,
                },
            )
            .unwrap();
            let events: Vec<_> = [
                (Event::InstructionsRetired, CountMode::UserOnly),
                (Event::CoreCycles, CountMode::UserOnly),
                (Event::BranchesRetired, CountMode::UserOnly),
                (Event::ICacheMisses, CountMode::UserOnly),
            ][..n]
                .to_vec();
            pc.control(&events).unwrap();
            pc.start().unwrap();
            let c0 = pc.read_ctrs().unwrap().pmcs[0];
            let c1 = pc.read_ctrs().unwrap().pmcs[0];
            c1 - c0
        };
        let one = run(1);
        let four = run(4);
        // Paper: K8 read-read grows from ~84 to ~125 between 1 and 4.
        assert!(four > one + 20, "one={one} four={four}");
        assert!(four < one + 90, "growth should be modest: {one} -> {four}");
    }

    #[test]
    fn fast_read_window_helper() {
        let c = PerfctrCosts::for_processor(Processor::AthlonK8);
        let (p1, q1) = fast_read_window(&c, 1);
        let (p4, q4) = fast_read_window(&c, 4);
        assert!(p4 > p1);
        assert!(q4 > q1);
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut pc = booted(true);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
            .unwrap();
        pc.start().unwrap();
        let _ = pc.read_ctrs().unwrap();
        pc.reset().unwrap();
        // Counter restarts from (near) zero: only the post-reset handler
        // tail and read-pre window count.
        let v = pc.read_ctrs().unwrap().pmcs[0];
        assert!(v < 1_500, "post-reset value = {v}");
    }

    #[test]
    fn reseed_matches_fresh_boot() {
        let lifecycle = |pc: &mut Perfctr| {
            pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])
                .unwrap();
            pc.start().unwrap();
            let c0 = pc.read_ctrs().unwrap();
            let c1 = pc.read_ctrs().unwrap();
            (c0, c1, pc.system().machine().cycle())
        };
        for (tsc_on, seed) in [(true, 7u64), (false, 7), (true, 99)] {
            let options = PerfctrOptions { tsc_on, seed };
            let mut fresh =
                Perfctr::boot(Processor::AthlonK8, KernelConfig::default(), options).unwrap();
            let expected = lifecycle(&mut fresh);

            // Dirty a handle booted under different options, then reseed.
            let mut reused = Perfctr::boot(
                Processor::AthlonK8,
                KernelConfig::default().with_seed(1),
                PerfctrOptions {
                    tsc_on: !tsc_on,
                    seed: seed ^ 0xAB,
                },
            )
            .unwrap();
            let _ = lifecycle(&mut reused);
            reused.reseed(&KernelConfig::default(), options).unwrap();
            assert!(!reused.is_running());
            assert_eq!(reused.counter_count(), 0);
            assert_eq!(lifecycle(&mut reused), expected, "tsc={tsc_on} seed={seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut pc = booted(true);
            pc.control(&[(Event::InstructionsRetired, CountMode::UserOnly)])
                .unwrap();
            pc.start().unwrap();
            let c0 = pc.read_ctrs().unwrap().pmcs[0];
            let c1 = pc.read_ctrs().unwrap().pmcs[0];
            c1 - c0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn benchmark_instructions_counted_exactly() {
        use counterlab_cpu::mix::InstMix;
        let mut pc = booted(true);
        pc.control(&[(Event::InstructionsRetired, CountMode::UserOnly)])
            .unwrap();
        pc.start().unwrap();
        let c0 = pc.read_ctrs().unwrap().pmcs[0];
        pc.system_mut()
            .run_user_mix(&InstMix::straight_line(10_000));
        let c1 = pc.read_ctrs().unwrap().pmcs[0];
        let measured = c1 - c0;
        // benchmark + fixed window error (~109)
        assert!(measured >= 10_000);
        assert!(measured < 10_200, "measured = {measured}");
    }
}
