//! Model-based property test of the PAPI low-level API: arbitrary call
//! sequences against a reference state machine. Whatever the sequence,
//! the real event set and the reference must agree on accept/reject, and
//! accepted reads must be monotone while running.

use counterlab_cpu::uarch::Processor;
use counterlab_kernel::config::{KernelConfig, SkidModel};
use counterlab_papi::{BackendKind, PapiLowLevel, PapiPreset};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    AddEvent(PapiPreset),
    Start,
    Read,
    Stop,
    Reset,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop_oneof![
            Just(PapiPreset::PAPI_TOT_INS),
            Just(PapiPreset::PAPI_TOT_CYC),
            Just(PapiPreset::PAPI_BR_INS),
        ]
        .prop_map(Op::AddEvent),
        Just(Op::Start),
        Just(Op::Read),
        Just(Op::Stop),
        Just(Op::Reset),
    ]
}

/// Reference model of the event-set state machine.
#[derive(Debug, Default)]
struct Model {
    events: Vec<PapiPreset>,
    running: bool,
}

impl Model {
    /// Whether the op should succeed, updating the model if so.
    fn apply(&mut self, op: Op) -> bool {
        match op {
            Op::AddEvent(p) => {
                if self.running || self.events.contains(&p) {
                    false
                } else {
                    self.events.push(p);
                    true
                }
            }
            Op::Start => {
                if self.running || self.events.is_empty() {
                    false
                } else {
                    self.running = true;
                    true
                }
            }
            Op::Read => self.running,
            Op::Stop => {
                if self.running {
                    self.running = false;
                    true
                } else {
                    false
                }
            }
            // PAPI_reset on a configured set succeeds whether running or
            // not; on an empty set the backend rejects it.
            Op::Reset => !self.events.is_empty(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn papi_matches_reference_model(
        kind_pc in any::<bool>(),
        ops in prop::collection::vec(arb_op(), 1..30),
        seed in any::<u64>(),
    ) {
        let kind = if kind_pc { BackendKind::Perfctr } else { BackendKind::Perfmon };
        let kernel = KernelConfig::default()
            .with_hz(0)
            .with_skid(SkidModel::disabled());
        let mut papi = PapiLowLevel::boot(kind, Processor::AthlonK8, kernel, seed).unwrap();
        let mut model = Model::default();
        let mut last_read: Option<Vec<u64>> = None;

        for op in ops {
            let should_succeed = model.apply(op);
            let did_succeed = match op {
                Op::AddEvent(p) => papi.add_event(p).is_ok(),
                Op::Start => {
                    last_read = None;
                    papi.start().is_ok()
                }
                Op::Read => match papi.read() {
                    Ok(values) => {
                        prop_assert_eq!(values.len(), model.events.len());
                        if let Some(prev) = &last_read {
                            // Counter 0 (whatever it is) is monotone while
                            // the set keeps running.
                            prop_assert!(values[0] >= prev[0]);
                        }
                        last_read = Some(values);
                        true
                    }
                    Err(_) => false,
                },
                Op::Stop => {
                    last_read = None;
                    papi.stop().is_ok()
                }
                Op::Reset => {
                    last_read = None;
                    papi.reset().is_ok()
                }
            };
            prop_assert_eq!(
                did_succeed,
                should_succeed,
                "op {:?} diverged from the reference model (events={:?}, running={})",
                op, model.events, model.running
            );
        }
    }
}
