//! The substrate abstraction: PAPI built on perfctr or on perfmon2.
//!
//! The paper evaluates both builds (`PLpc`/`PHpc` vs `PLpm`/`PHpm`); the
//! [`Backend`] enum gives the PAPI layers one interface over the two
//! kernel extensions while preserving each extension's cost behaviour.

use counterlab_cpu::pmu::{CountMode, Event};
use counterlab_kernel::config::KernelConfig;
use counterlab_kernel::system::System;
use counterlab_perfctr::{Perfctr, PerfctrOptions};
use counterlab_perfmon::{Perfmon, PerfmonOptions};

use crate::{PapiError, Result};

/// Which kernel extension PAPI was built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// libperfctr / perfctr.
    Perfctr,
    /// libpfm / perfmon2.
    Perfmon,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Perfctr => "perfctr",
            BackendKind::Perfmon => "perfmon",
        })
    }
}

/// A PAPI substrate: one of the two kernel extensions.
#[derive(Debug, Clone)]
pub enum Backend {
    /// PAPI build over libperfctr.
    Perfctr(Perfctr),
    /// PAPI build over libpfm.
    Perfmon(Perfmon),
}

impl Backend {
    /// Attaches the given extension to an existing system.
    ///
    /// PAPI's perfctr substrate always enables the TSC — PAPI knows about
    /// the fast-read requirement (§4.1).
    ///
    /// # Errors
    ///
    /// Propagates extension attach failures.
    pub fn attach(kind: BackendKind, sys: System, seed: u64) -> Result<Self> {
        match kind {
            BackendKind::Perfctr => Ok(Backend::Perfctr(Perfctr::attach(
                sys,
                PerfctrOptions { tsc_on: true, seed },
            )?)),
            BackendKind::Perfmon => Ok(Backend::Perfmon(Perfmon::attach(
                sys,
                PerfmonOptions { seed },
            )?)),
        }
    }

    /// Returns the substrate to the state a fresh [`Backend::attach`]
    /// with the same kind and the given `kernel`/`seed` would produce,
    /// reusing the booted system's allocations (the measurement-session
    /// reuse path).
    ///
    /// # Errors
    ///
    /// Propagates extension reseed failures.
    pub fn reseed(&mut self, kernel: &KernelConfig, seed: u64) -> Result<()> {
        match self {
            Backend::Perfctr(pc) => pc
                .reseed(kernel, PerfctrOptions { tsc_on: true, seed })
                .map_err(PapiError::from),
            Backend::Perfmon(pm) => pm
                .reseed(kernel, PerfmonOptions { seed })
                .map_err(PapiError::from),
        }
    }

    /// Which extension this is.
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Perfctr(_) => BackendKind::Perfctr,
            Backend::Perfmon(_) => BackendKind::Perfmon,
        }
    }

    /// Programs the events (counting disabled).
    ///
    /// # Errors
    ///
    /// Propagates extension errors (e.g. too many counters).
    pub fn configure(&mut self, events: &[(Event, CountMode)]) -> Result<()> {
        match self {
            Backend::Perfctr(pc) => pc.control(events).map_err(PapiError::from),
            Backend::Perfmon(pm) => pm.write_pmcs(events).map_err(PapiError::from),
        }
    }

    /// Starts counting.
    ///
    /// # Errors
    ///
    /// Propagates extension errors.
    pub fn start(&mut self) -> Result<()> {
        match self {
            Backend::Perfctr(pc) => pc.start().map_err(PapiError::from),
            Backend::Perfmon(pm) => pm.start().map_err(PapiError::from),
        }
    }

    /// Stops counting.
    ///
    /// # Errors
    ///
    /// Propagates extension errors.
    pub fn stop(&mut self) -> Result<()> {
        match self {
            Backend::Perfctr(pc) => pc.stop().map_err(PapiError::from),
            Backend::Perfmon(pm) => pm.stop().map_err(PapiError::from),
        }
    }

    /// Resets counter values to zero.
    ///
    /// # Errors
    ///
    /// Propagates extension errors.
    pub fn reset(&mut self) -> Result<()> {
        match self {
            Backend::Perfctr(pc) => pc.reset().map_err(PapiError::from),
            Backend::Perfmon(pm) => pm.reset().map_err(PapiError::from),
        }
    }

    /// Reads all programmed counters.
    ///
    /// # Errors
    ///
    /// Propagates extension errors.
    pub fn read(&mut self) -> Result<Vec<u64>> {
        let mut v = Vec::new();
        self.read_into(&mut v)?;
        Ok(v)
    }

    /// [`Backend::read`] into a caller-owned buffer (cleared first): the
    /// allocation-free variant for measurement hot loops; the simulated
    /// call path is identical.
    ///
    /// # Errors
    ///
    /// Propagates extension errors.
    pub fn read_into(&mut self, out: &mut Vec<u64>) -> Result<()> {
        match self {
            Backend::Perfctr(pc) => {
                pc.read_ctrs_into(out)?;
                Ok(())
            }
            Backend::Perfmon(pm) => pm.read_pmds_into(out).map_err(PapiError::from),
        }
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        match self {
            Backend::Perfctr(pc) => pc.system(),
            Backend::Perfmon(pm) => pm.system(),
        }
    }

    /// Mutable system access.
    pub fn system_mut(&mut self) -> &mut System {
        match self {
            Backend::Perfctr(pc) => pc.system_mut(),
            Backend::Perfmon(pm) => pm.system_mut(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterlab_cpu::uarch::Processor;
    use counterlab_kernel::config::{KernelConfig, SkidModel};

    fn sys() -> System {
        System::new(
            Processor::AthlonK8,
            KernelConfig::default()
                .with_hz(0)
                .with_skid(SkidModel::disabled()),
        )
    }

    #[test]
    fn attach_both_kinds() {
        let pc = Backend::attach(BackendKind::Perfctr, sys(), 1).unwrap();
        assert_eq!(pc.kind(), BackendKind::Perfctr);
        let pm = Backend::attach(BackendKind::Perfmon, sys(), 1).unwrap();
        assert_eq!(pm.kind(), BackendKind::Perfmon);
    }

    #[test]
    fn uniform_lifecycle() {
        for kind in [BackendKind::Perfctr, BackendKind::Perfmon] {
            let mut b = Backend::attach(kind, sys(), 2).unwrap();
            b.configure(&[(Event::InstructionsRetired, CountMode::UserOnly)])
                .unwrap();
            b.start().unwrap();
            let v0 = b.read().unwrap()[0];
            let v1 = b.read().unwrap()[0];
            assert!(v1 > v0, "{kind}: counting must progress");
            b.stop().unwrap();
            b.reset().unwrap();
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(BackendKind::Perfctr.to_string(), "perfctr");
        assert_eq!(BackendKind::Perfmon.to_string(), "perfmon");
    }
}
