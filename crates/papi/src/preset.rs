//! PAPI preset events and measurement domains.
//!
//! PAPI achieves processor independence “by providing a set of high level
//! events that are mapped to the corresponding low-level events available
//! on specific processors” (§2.4 of the paper). The preset names below are
//! the classic `PAPI_*` constants; the mapping target is the portable
//! [`Event`] of the CPU model, which each micro-architecture encodes
//! differently (see `counterlab_cpu::uarch::Uarch::event_encoding`).

use counterlab_cpu::pmu::{CountMode, Event};

/// PAPI preset (platform-independent) events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(non_camel_case_types)]
pub enum PapiPreset {
    /// `PAPI_TOT_INS` — total instructions completed.
    PAPI_TOT_INS,
    /// `PAPI_TOT_CYC` — total cycles.
    PAPI_TOT_CYC,
    /// `PAPI_BR_INS` — branch instructions.
    PAPI_BR_INS,
    /// `PAPI_BR_MSP` — mispredicted branches.
    PAPI_BR_MSP,
    /// `PAPI_L1_ICM` — L1 instruction-cache misses.
    PAPI_L1_ICM,
    /// `PAPI_L1_DCM` — L1 data-cache misses.
    PAPI_L1_DCM,
    /// `PAPI_TLB_IM` — instruction TLB misses.
    PAPI_TLB_IM,
}

impl PapiPreset {
    /// All presets.
    pub const ALL: [PapiPreset; 7] = [
        PapiPreset::PAPI_TOT_INS,
        PapiPreset::PAPI_TOT_CYC,
        PapiPreset::PAPI_BR_INS,
        PapiPreset::PAPI_BR_MSP,
        PapiPreset::PAPI_L1_ICM,
        PapiPreset::PAPI_L1_DCM,
        PapiPreset::PAPI_TLB_IM,
    ];

    /// The native event this preset maps to.
    pub fn to_native(self) -> Event {
        match self {
            PapiPreset::PAPI_TOT_INS => Event::InstructionsRetired,
            PapiPreset::PAPI_TOT_CYC => Event::CoreCycles,
            PapiPreset::PAPI_BR_INS => Event::BranchesRetired,
            PapiPreset::PAPI_BR_MSP => Event::BranchMispredictions,
            PapiPreset::PAPI_L1_ICM => Event::ICacheMisses,
            PapiPreset::PAPI_L1_DCM => Event::DCacheMisses,
            PapiPreset::PAPI_TLB_IM => Event::ItlbMisses,
        }
    }

    /// The canonical `PAPI_*` name.
    pub fn name(self) -> &'static str {
        match self {
            PapiPreset::PAPI_TOT_INS => "PAPI_TOT_INS",
            PapiPreset::PAPI_TOT_CYC => "PAPI_TOT_CYC",
            PapiPreset::PAPI_BR_INS => "PAPI_BR_INS",
            PapiPreset::PAPI_BR_MSP => "PAPI_BR_MSP",
            PapiPreset::PAPI_L1_ICM => "PAPI_L1_ICM",
            PapiPreset::PAPI_L1_DCM => "PAPI_L1_DCM",
            PapiPreset::PAPI_TLB_IM => "PAPI_TLB_IM",
        }
    }

    /// Parses a `PAPI_*` name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for PapiPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// PAPI measurement domains (`PAPI_set_domain`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PapiDomain {
    /// `PAPI_DOM_USER` — user-mode events only (PAPI's default).
    #[default]
    User,
    /// `PAPI_DOM_KERNEL` — kernel-mode events only.
    Kernel,
    /// `PAPI_DOM_ALL` — user plus kernel.
    All,
}

impl PapiDomain {
    /// The counter mode this domain configures.
    pub fn to_mode(self) -> CountMode {
        match self {
            PapiDomain::User => CountMode::UserOnly,
            PapiDomain::Kernel => CountMode::KernelOnly,
            PapiDomain::All => CountMode::UserAndKernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for p in PapiPreset::ALL {
            assert_eq!(PapiPreset::from_name(p.name()), Some(p));
        }
        assert_eq!(PapiPreset::from_name("PAPI_NOPE"), None);
    }

    #[test]
    fn native_mapping_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for p in PapiPreset::ALL {
            assert!(seen.insert(p.to_native()), "{p} duplicates a native event");
        }
    }

    #[test]
    fn default_domain_is_user() {
        assert_eq!(PapiDomain::default(), PapiDomain::User);
        assert_eq!(PapiDomain::default().to_mode(), CountMode::UserOnly);
        assert_eq!(PapiDomain::All.to_mode(), CountMode::UserAndKernel);
    }

    #[test]
    fn display_is_papi_name() {
        assert_eq!(PapiPreset::PAPI_TOT_INS.to_string(), "PAPI_TOT_INS");
    }
}
