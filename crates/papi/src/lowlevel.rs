//! The PAPI low-level API (`PAPI_create_eventset`, `PAPI_add_event`,
//! `PAPI_start`, `PAPI_read`, `PAPI_accum`, `PAPI_stop`, `PAPI_reset`).
//!
//! “The low-level API is richer and more complex” (§3.3): every call runs
//! through PAPI's event-set bookkeeping before reaching the substrate, and
//! those wrapper instructions land inside the measurement window. The
//! paper quantifies the cost: going from the direct libraries to low-level
//! PAPI raises the user-mode read-read error from 37 to 134 instructions
//! (perfmon, Table 3).

use counterlab_cpu::pmu::{CountMode, Event};
use counterlab_kernel::syscall::user_code_mix;
use counterlab_kernel::system::System;

use crate::backend::{Backend, BackendKind};
use crate::preset::{PapiDomain, PapiPreset};
use crate::{PapiError, Result};

/// Per-call user-mode wrapper instructions of the low-level API, before
/// the substrate call.
pub const LOW_LEVEL_PRE: u64 = 48;
/// Per-call user-mode wrapper instructions after the substrate call.
pub const LOW_LEVEL_POST: u64 = 49;

/// Event-set state, mirroring PAPI's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSetState {
    /// Created but not started.
    Stopped,
    /// Counting.
    Running,
}

/// A PAPI low-level event set bound to a substrate.
///
/// # Examples
///
/// ```
/// use counterlab_papi::lowlevel::PapiLowLevel;
/// use counterlab_papi::backend::BackendKind;
/// use counterlab_papi::preset::PapiPreset;
/// use counterlab_cpu::prelude::*;
/// use counterlab_kernel::prelude::*;
///
/// # fn main() -> Result<(), counterlab_papi::PapiError> {
/// let mut papi = PapiLowLevel::boot(BackendKind::Perfmon, Processor::AthlonK8,
///                                   KernelConfig::default(), 7)?;
/// papi.add_event(PapiPreset::PAPI_TOT_INS)?;
/// papi.start()?;
/// let values = papi.read()?;
/// assert_eq!(values.len(), 1);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct PapiLowLevel {
    backend: Backend,
    events: Vec<PapiPreset>,
    domain: PapiDomain,
    state: EventSetState,
    configured: bool,
}

impl PapiLowLevel {
    /// `PAPI_library_init` + `PAPI_create_eventset` on a fresh system.
    ///
    /// # Errors
    ///
    /// Propagates substrate attach failures.
    pub fn boot(
        kind: BackendKind,
        processor: counterlab_cpu::uarch::Processor,
        kernel: counterlab_kernel::config::KernelConfig,
        seed: u64,
    ) -> Result<Self> {
        let sys = System::new(processor, kernel);
        Self::attach(kind, sys, seed)
    }

    /// Initializes PAPI over an existing system.
    ///
    /// # Errors
    ///
    /// Propagates substrate attach failures.
    pub fn attach(kind: BackendKind, sys: System, seed: u64) -> Result<Self> {
        let mut backend = Backend::attach(kind, sys, seed)?;
        // PAPI_library_init: component discovery, preset table setup.
        backend.system_mut().run_user_mix(&user_code_mix(600));
        Ok(PapiLowLevel {
            backend,
            events: Vec::new(),
            domain: PapiDomain::default(),
            state: EventSetState::Stopped,
            configured: false,
        })
    }

    /// Returns the interface to the state a fresh
    /// [`PapiLowLevel::attach`] with the given `kernel`/`seed` would
    /// produce, reusing the booted system's allocations. Replays the
    /// substrate attach and the `PAPI_library_init` work, so the handle
    /// is bit-identical to a fresh boot (the measurement-session reuse
    /// path).
    ///
    /// # Errors
    ///
    /// Propagates substrate reseed failures.
    pub fn reseed(
        &mut self,
        kernel: &counterlab_kernel::config::KernelConfig,
        seed: u64,
    ) -> Result<()> {
        self.backend.reseed(kernel, seed)?;
        // PAPI_library_init: component discovery, preset table setup.
        self.backend.system_mut().run_user_mix(&user_code_mix(600));
        self.events.clear();
        self.domain = PapiDomain::default();
        self.state = EventSetState::Stopped;
        self.configured = false;
        Ok(())
    }

    /// Which substrate this build uses.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        self.backend.system()
    }

    /// Mutable system access (to run benchmark code).
    pub fn system_mut(&mut self) -> &mut System {
        self.backend.system_mut()
    }

    /// Current state of the event set.
    pub fn state(&self) -> EventSetState {
        self.state
    }

    /// `PAPI_set_domain`: selects which privilege levels are counted.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] while the event set is running.
    pub fn set_domain(&mut self, domain: PapiDomain) -> Result<()> {
        if self.state == EventSetState::Running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_set_domain",
                state: "running",
            });
        }
        self.domain = domain;
        self.configured = false;
        Ok(())
    }

    /// `PAPI_add_event`: appends a preset to the event set.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] while running;
    /// [`PapiError::EventAlreadyAdded`] for duplicates.
    pub fn add_event(&mut self, preset: PapiPreset) -> Result<()> {
        if self.state == EventSetState::Running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_add_event",
                state: "running",
            });
        }
        if self.events.contains(&preset) {
            return Err(PapiError::EventAlreadyAdded {
                name: preset.name(),
            });
        }
        self.events.push(preset);
        self.configured = false;
        Ok(())
    }

    /// Events currently in the set.
    pub fn events(&self) -> &[PapiPreset] {
        &self.events
    }

    /// `PAPI_start`: begins counting the event set.
    ///
    /// # Errors
    ///
    /// [`PapiError::NoEvents`] on an empty set; [`PapiError::InvalidState`]
    /// if already running.
    pub fn start(&mut self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PapiError::NoEvents);
        }
        if self.state == EventSetState::Running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_start",
                state: "running",
            });
        }
        self.wrap_pre();
        self.ensure_configured()?;
        self.backend.start()?;
        self.wrap_post();
        self.state = EventSetState::Running;
        Ok(())
    }

    /// `PAPI_read`: samples the counters without disturbing them.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] unless running.
    pub fn read(&mut self) -> Result<Vec<u64>> {
        let mut values = Vec::with_capacity(self.events.len());
        self.read_into(&mut values)?;
        Ok(values)
    }

    /// [`PapiLowLevel::read`] into a caller-owned buffer (cleared first):
    /// the allocation-free variant for measurement hot loops; the
    /// simulated call path is identical.
    ///
    /// # Errors
    ///
    /// As [`PapiLowLevel::read`].
    pub fn read_into(&mut self, out: &mut Vec<u64>) -> Result<()> {
        if self.state != EventSetState::Running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_read",
                state: "stopped",
            });
        }
        self.wrap_pre();
        self.backend.read_into(out)?;
        self.wrap_post();
        Ok(())
    }

    /// `PAPI_accum`: adds the counters into `values` and resets them.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] unless running;
    /// [`PapiError::LengthMismatch`] if `values` is the wrong size.
    pub fn accum(&mut self, values: &mut [u64]) -> Result<()> {
        if self.state != EventSetState::Running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_accum",
                state: "stopped",
            });
        }
        if values.len() != self.events.len() {
            return Err(PapiError::LengthMismatch {
                expected: self.events.len(),
                got: values.len(),
            });
        }
        self.wrap_pre();
        let sample = self.backend.read()?;
        self.backend.reset()?;
        self.wrap_post();
        for (acc, v) in values.iter_mut().zip(sample) {
            *acc += v;
        }
        Ok(())
    }

    /// `PAPI_stop`: stops counting and returns the final values.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] unless running.
    pub fn stop(&mut self) -> Result<Vec<u64>> {
        let mut values = Vec::with_capacity(self.events.len());
        self.stop_into(&mut values)?;
        Ok(values)
    }

    /// [`PapiLowLevel::stop`] into a caller-owned buffer (cleared first):
    /// the allocation-free variant for measurement hot loops; the
    /// simulated call path is identical.
    ///
    /// # Errors
    ///
    /// As [`PapiLowLevel::stop`].
    pub fn stop_into(&mut self, out: &mut Vec<u64>) -> Result<()> {
        if self.state != EventSetState::Running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_stop",
                state: "stopped",
            });
        }
        self.wrap_pre();
        self.backend.stop()?;
        self.backend.read_into(out)?;
        self.wrap_post();
        self.state = EventSetState::Stopped;
        Ok(())
    }

    /// `PAPI_reset`: zeroes the event set's counters.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn reset(&mut self) -> Result<()> {
        self.wrap_pre();
        self.ensure_configured()?;
        self.backend.reset()?;
        self.wrap_post();
        Ok(())
    }

    fn ensure_configured(&mut self) -> Result<()> {
        if !self.configured {
            let mode = self.domain.to_mode();
            let native: Vec<(Event, CountMode)> =
                self.events.iter().map(|p| (p.to_native(), mode)).collect();
            self.backend.configure(&native)?;
            self.configured = true;
        }
        Ok(())
    }

    fn wrap_pre(&mut self) {
        self.backend
            .system_mut()
            .run_user_mix(&user_code_mix(LOW_LEVEL_PRE));
    }

    fn wrap_post(&mut self) {
        self.backend
            .system_mut()
            .run_user_mix(&user_code_mix(LOW_LEVEL_POST));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterlab_cpu::uarch::Processor;
    use counterlab_kernel::config::{KernelConfig, SkidModel};

    fn quiet() -> KernelConfig {
        KernelConfig::default()
            .with_hz(0)
            .with_skid(SkidModel::disabled())
    }

    fn booted(kind: BackendKind) -> PapiLowLevel {
        PapiLowLevel::boot(kind, Processor::AthlonK8, quiet(), 1).unwrap()
    }

    #[test]
    fn lifecycle_both_backends() {
        for kind in [BackendKind::Perfctr, BackendKind::Perfmon] {
            let mut papi = booted(kind);
            papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
            papi.start().unwrap();
            let v0 = papi.read().unwrap()[0];
            let v1 = papi.read().unwrap()[0];
            assert!(v1 > v0, "{kind:?}");
            let fin = papi.stop().unwrap();
            assert_eq!(fin.len(), 1);
        }
    }

    #[test]
    fn state_machine_enforced() {
        let mut papi = booted(BackendKind::Perfmon);
        assert!(matches!(papi.start(), Err(PapiError::NoEvents)));
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        assert!(matches!(papi.read(), Err(PapiError::InvalidState { .. })));
        papi.start().unwrap();
        assert!(matches!(papi.start(), Err(PapiError::InvalidState { .. })));
        assert!(matches!(
            papi.add_event(PapiPreset::PAPI_TOT_CYC),
            Err(PapiError::InvalidState { .. })
        ));
        papi.stop().unwrap();
        assert!(matches!(papi.read(), Err(PapiError::InvalidState { .. })));
    }

    #[test]
    fn reseed_matches_fresh_boot() {
        let lifecycle = |papi: &mut PapiLowLevel| {
            papi.set_domain(PapiDomain::All).unwrap();
            papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
            papi.start().unwrap();
            let v0 = papi.read().unwrap();
            let v1 = papi.read().unwrap();
            (v0, v1, papi.system().machine().cycle())
        };
        for kind in [BackendKind::Perfctr, BackendKind::Perfmon] {
            let kernel = counterlab_kernel::config::KernelConfig::default();
            let mut fresh =
                PapiLowLevel::boot(kind, Processor::AthlonK8, kernel.clone(), 11).unwrap();
            let expected = lifecycle(&mut fresh);

            let mut reused = PapiLowLevel::boot(
                kind,
                Processor::AthlonK8,
                kernel.clone().with_seed(5),
                77,
            )
            .unwrap();
            let _ = lifecycle(&mut reused);
            reused.reseed(&kernel, 11).unwrap();
            assert_eq!(reused.state(), EventSetState::Stopped);
            assert!(reused.events().is_empty());
            assert_eq!(lifecycle(&mut reused), expected, "{kind:?}");
        }
    }

    #[test]
    fn duplicate_event_rejected() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        assert!(matches!(
            papi.add_event(PapiPreset::PAPI_TOT_INS),
            Err(PapiError::EventAlreadyAdded { .. })
        ));
    }

    #[test]
    fn default_domain_counts_user_only() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        papi.start().unwrap();
        let v0 = papi.read().unwrap()[0];
        let v1 = papi.read().unwrap()[0];
        // User-only window over perfmon: direct is 37, PAPI adds ~97.
        let err = v1 - v0;
        assert!((120..=155).contains(&err), "PLpm user rr = {err}");
    }

    #[test]
    fn domain_all_includes_kernel() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.set_domain(PapiDomain::All).unwrap();
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        papi.start().unwrap();
        let v0 = papi.read().unwrap()[0];
        let v1 = papi.read().unwrap()[0];
        let err = v1 - v0;
        // Direct pm is ~573 on K8; PAPI adds ~97 user.
        assert!((620..=760).contains(&err), "PLpm u+k rr = {err}");
    }

    #[test]
    fn set_domain_while_running_rejected() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        papi.start().unwrap();
        assert!(matches!(
            papi.set_domain(PapiDomain::All),
            Err(PapiError::InvalidState { .. })
        ));
    }

    #[test]
    fn accum_resets_and_accumulates() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        papi.start().unwrap();
        let mut acc = vec![0u64];
        papi.accum(&mut acc).unwrap();
        let first = acc[0];
        papi.accum(&mut acc).unwrap();
        // Accumulated twice; each interval is small (window error only).
        assert!(acc[0] > first);
        assert!(acc[0] < 2 * first + 1500, "acc={} first={first}", acc[0]);
    }

    #[test]
    fn accum_length_checked() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        papi.start().unwrap();
        let mut wrong = vec![0u64; 3];
        assert!(matches!(
            papi.accum(&mut wrong),
            Err(PapiError::LengthMismatch {
                expected: 1,
                got: 3
            })
        ));
    }

    #[test]
    fn plpc_window_larger_than_direct_pc() {
        // PAPI low level over perfctr: user rr error = pc fast read window
        // (~84 on K8) + ~97 PAPI wrapper instructions.
        let mut papi = booted(BackendKind::Perfctr);
        papi.add_event(PapiPreset::PAPI_TOT_INS).unwrap();
        papi.start().unwrap();
        let v0 = papi.read().unwrap()[0];
        let v1 = papi.read().unwrap()[0];
        let err = v1 - v0;
        assert!((165..=220).contains(&err), "PLpc user rr = {err}");
    }
}
