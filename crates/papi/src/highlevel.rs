//! The PAPI high-level API (`PAPI_start_counters`, `PAPI_read_counters`,
//! `PAPI_accum_counters`, `PAPI_stop_counters`).
//!
//! “To allow an even simpler programming model, PAPI provides a high level
//! API that requires almost no configuration” (§2.4). The convenience has
//! two costs the paper measures:
//!
//! 1. extra wrapper instructions on every call (user-mode error rises from
//!    134 to 236 between `PLpm` and `PHpm`, Table 3);
//! 2. `PAPI_read_counters` **implicitly resets** the counters after
//!    reading, which is why the high-level API cannot express the
//!    read-read and read-stop patterns (§3.5).

use counterlab_kernel::syscall::user_code_mix;
use counterlab_kernel::system::System;

use crate::backend::{Backend, BackendKind};
use crate::lowlevel::{LOW_LEVEL_POST, LOW_LEVEL_PRE};
use crate::preset::{PapiDomain, PapiPreset};
use crate::{PapiError, Result};

/// Extra per-call user-mode wrapper instructions of the high-level API,
/// on top of the low-level layer it calls internally.
pub const HIGH_LEVEL_EXTRA_PRE: u64 = 52;
/// Extra post-call wrapper instructions.
pub const HIGH_LEVEL_EXTRA_POST: u64 = 53;

/// The PAPI high-level interface.
///
/// # Examples
///
/// ```
/// use counterlab_papi::highlevel::PapiHighLevel;
/// use counterlab_papi::backend::BackendKind;
/// use counterlab_papi::preset::PapiPreset;
/// use counterlab_cpu::prelude::*;
/// use counterlab_kernel::prelude::*;
///
/// # fn main() -> Result<(), counterlab_papi::PapiError> {
/// let mut papi = PapiHighLevel::boot(BackendKind::Perfctr, Processor::Core2Duo,
///                                    KernelConfig::default(), 7)?;
/// papi.start_counters(&[PapiPreset::PAPI_TOT_INS])?;
/// let mut values = vec![0i64; 1];
/// papi.read_counters(&mut values)?; // implicitly resets!
/// papi.stop_counters(&mut values)?;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct PapiHighLevel {
    backend: Backend,
    events: Vec<PapiPreset>,
    domain: PapiDomain,
    running: bool,
}

impl PapiHighLevel {
    /// Boots a fresh system and initializes the high-level interface.
    ///
    /// # Errors
    ///
    /// Propagates substrate attach failures.
    pub fn boot(
        kind: BackendKind,
        processor: counterlab_cpu::uarch::Processor,
        kernel: counterlab_kernel::config::KernelConfig,
        seed: u64,
    ) -> Result<Self> {
        let sys = System::new(processor, kernel);
        Self::attach(kind, sys, seed)
    }

    /// Initializes the high-level interface over an existing system.
    ///
    /// # Errors
    ///
    /// Propagates substrate attach failures.
    pub fn attach(kind: BackendKind, sys: System, seed: u64) -> Result<Self> {
        let mut backend = Backend::attach(kind, sys, seed)?;
        // PAPI_library_init (implicit in the first high-level call).
        backend.system_mut().run_user_mix(&user_code_mix(600));
        Ok(PapiHighLevel {
            backend,
            events: Vec::new(),
            domain: PapiDomain::default(),
            running: false,
        })
    }

    /// Returns the interface to the state a fresh
    /// [`PapiHighLevel::attach`] with the given `kernel`/`seed` would
    /// produce, reusing the booted system's allocations (the
    /// measurement-session reuse path).
    ///
    /// # Errors
    ///
    /// Propagates substrate reseed failures.
    pub fn reseed(
        &mut self,
        kernel: &counterlab_kernel::config::KernelConfig,
        seed: u64,
    ) -> Result<()> {
        self.backend.reseed(kernel, seed)?;
        // PAPI_library_init (implicit in the first high-level call).
        self.backend.system_mut().run_user_mix(&user_code_mix(600));
        self.events.clear();
        self.domain = PapiDomain::default();
        self.running = false;
        Ok(())
    }

    /// Which substrate this build uses.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        self.backend.system()
    }

    /// Mutable system access.
    pub fn system_mut(&mut self) -> &mut System {
        self.backend.system_mut()
    }

    /// Selects the measurement domain for subsequent
    /// [`PapiHighLevel::start_counters`] calls (the real high-level API
    /// inherits the process-wide default domain; this models
    /// `PAPI_set_domain` called before the high-level sequence).
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] while counters run.
    pub fn set_domain(&mut self, domain: PapiDomain) -> Result<()> {
        if self.running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_set_domain",
                state: "running",
            });
        }
        self.domain = domain;
        Ok(())
    }

    /// `PAPI_start_counters`: configures and starts the given presets in
    /// one call.
    ///
    /// # Errors
    ///
    /// [`PapiError::NoEvents`] for an empty list;
    /// [`PapiError::InvalidState`] if already running.
    pub fn start_counters(&mut self, presets: &[PapiPreset]) -> Result<()> {
        if presets.is_empty() {
            return Err(PapiError::NoEvents);
        }
        if self.running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_start_counters",
                state: "running",
            });
        }
        self.wrap_pre();
        let mode = self.domain.to_mode();
        let native: Vec<_> = presets.iter().map(|p| (p.to_native(), mode)).collect();
        self.backend.configure(&native)?;
        self.backend.start()?;
        self.wrap_post();
        self.events = presets.to_vec();
        self.running = true;
        Ok(())
    }

    /// `PAPI_read_counters`: copies the current counts into `values` and
    /// **resets the counters to zero** — the implicit reset that makes the
    /// read-read pattern impossible with this API (§3.5).
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] unless running;
    /// [`PapiError::LengthMismatch`] on a wrong-size buffer.
    pub fn read_counters(&mut self, values: &mut [i64]) -> Result<()> {
        if !self.running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_read_counters",
                state: "stopped",
            });
        }
        if values.len() != self.events.len() {
            return Err(PapiError::LengthMismatch {
                expected: self.events.len(),
                got: values.len(),
            });
        }
        self.wrap_pre();
        let sample = self.backend.read()?;
        self.backend.reset()?;
        self.wrap_post();
        for (dst, v) in values.iter_mut().zip(sample) {
            *dst = v as i64;
        }
        Ok(())
    }

    /// `PAPI_accum_counters`: adds the counts into `values` and resets.
    ///
    /// # Errors
    ///
    /// As [`PapiHighLevel::read_counters`].
    pub fn accum_counters(&mut self, values: &mut [i64]) -> Result<()> {
        if !self.running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_accum_counters",
                state: "stopped",
            });
        }
        if values.len() != self.events.len() {
            return Err(PapiError::LengthMismatch {
                expected: self.events.len(),
                got: values.len(),
            });
        }
        self.wrap_pre();
        let sample = self.backend.read()?;
        self.backend.reset()?;
        self.wrap_post();
        for (dst, v) in values.iter_mut().zip(sample) {
            *dst += v as i64;
        }
        Ok(())
    }

    /// `PAPI_stop_counters`: stops counting and stores the final counts.
    ///
    /// # Errors
    ///
    /// As [`PapiHighLevel::read_counters`].
    pub fn stop_counters(&mut self, values: &mut [i64]) -> Result<()> {
        if !self.running {
            return Err(PapiError::InvalidState {
                operation: "PAPI_stop_counters",
                state: "stopped",
            });
        }
        if values.len() != self.events.len() {
            return Err(PapiError::LengthMismatch {
                expected: self.events.len(),
                got: values.len(),
            });
        }
        self.wrap_pre();
        self.backend.stop()?;
        let sample = self.backend.read()?;
        self.wrap_post();
        for (dst, v) in values.iter_mut().zip(sample) {
            *dst = v as i64;
        }
        self.running = false;
        Ok(())
    }

    /// Whether counters are running.
    pub fn is_running(&self) -> bool {
        self.running
    }

    fn wrap_pre(&mut self) {
        self.backend
            .system_mut()
            .run_user_mix(&user_code_mix(HIGH_LEVEL_EXTRA_PRE + LOW_LEVEL_PRE));
    }

    fn wrap_post(&mut self) {
        self.backend
            .system_mut()
            .run_user_mix(&user_code_mix(HIGH_LEVEL_EXTRA_POST + LOW_LEVEL_POST));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterlab_cpu::uarch::Processor;
    use counterlab_kernel::config::{KernelConfig, SkidModel};

    fn quiet() -> KernelConfig {
        KernelConfig::default()
            .with_hz(0)
            .with_skid(SkidModel::disabled())
    }

    fn booted(kind: BackendKind) -> PapiHighLevel {
        PapiHighLevel::boot(kind, Processor::AthlonK8, quiet(), 1).unwrap()
    }

    #[test]
    fn lifecycle_both_backends() {
        for kind in [BackendKind::Perfctr, BackendKind::Perfmon] {
            let mut papi = booted(kind);
            papi.start_counters(&[PapiPreset::PAPI_TOT_INS]).unwrap();
            assert!(papi.is_running());
            let mut v = vec![0i64];
            papi.read_counters(&mut v).unwrap();
            papi.stop_counters(&mut v).unwrap();
            assert!(!papi.is_running());
        }
    }

    #[test]
    fn read_counters_implicitly_resets() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.set_domain(PapiDomain::User).unwrap();
        papi.start_counters(&[PapiPreset::PAPI_TOT_INS]).unwrap();
        // Run a chunk of benchmark work, read (and implicitly reset).
        papi.system_mut()
            .run_user_mix(&counterlab_cpu::mix::InstMix::straight_line(100_000));
        let mut v = vec![0i64];
        papi.read_counters(&mut v).unwrap();
        assert!(v[0] >= 100_000);
        // Immediately read again: the counter restarted near zero, so the
        // second reading must NOT include the 100k.
        let mut w = vec![0i64];
        papi.read_counters(&mut w).unwrap();
        assert!(w[0] < 5_000, "implicit reset missing: {}", w[0]);
    }

    #[test]
    fn window_error_larger_than_low_level() {
        // PHpm user-mode start→read window ≈ pm direct + PL + PH extras.
        let mut papi = booted(BackendKind::Perfmon);
        papi.start_counters(&[PapiPreset::PAPI_TOT_INS]).unwrap();
        let mut v = vec![0i64];
        papi.read_counters(&mut v).unwrap();
        let err = v[0] as u64;
        // Table 3: PHpm user start-read median 236.
        assert!((200..=280).contains(&err), "PHpm user ar = {err}");
    }

    #[test]
    fn state_machine() {
        let mut papi = booted(BackendKind::Perfctr);
        let mut v = vec![0i64];
        assert!(matches!(
            papi.read_counters(&mut v),
            Err(PapiError::InvalidState { .. })
        ));
        assert!(matches!(papi.start_counters(&[]), Err(PapiError::NoEvents)));
        papi.start_counters(&[PapiPreset::PAPI_TOT_INS]).unwrap();
        assert!(matches!(
            papi.start_counters(&[PapiPreset::PAPI_TOT_CYC]),
            Err(PapiError::InvalidState { .. })
        ));
        assert!(matches!(
            papi.set_domain(PapiDomain::All),
            Err(PapiError::InvalidState { .. })
        ));
    }

    #[test]
    fn buffer_length_enforced() {
        let mut papi = booted(BackendKind::Perfctr);
        papi.start_counters(&[PapiPreset::PAPI_TOT_INS]).unwrap();
        let mut wrong = vec![0i64; 2];
        assert!(matches!(
            papi.read_counters(&mut wrong),
            Err(PapiError::LengthMismatch {
                expected: 1,
                got: 2
            })
        ));
        assert!(matches!(
            papi.accum_counters(&mut wrong),
            Err(PapiError::LengthMismatch { .. })
        ));
        assert!(matches!(
            papi.stop_counters(&mut wrong),
            Err(PapiError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn accum_adds_into_buffer() {
        let mut papi = booted(BackendKind::Perfctr);
        papi.start_counters(&[PapiPreset::PAPI_TOT_INS]).unwrap();
        let mut acc = vec![1_000_000i64];
        papi.accum_counters(&mut acc).unwrap();
        assert!(acc[0] >= 1_000_000, "accumulates, not overwrites");
    }

    #[test]
    fn multiple_counters() {
        let mut papi = booted(BackendKind::Perfmon);
        papi.start_counters(&[
            PapiPreset::PAPI_TOT_INS,
            PapiPreset::PAPI_BR_INS,
            PapiPreset::PAPI_TOT_CYC,
        ])
        .unwrap();
        let mut v = vec![0i64; 3];
        papi.read_counters(&mut v).unwrap();
        // Instructions >= branches.
        assert!(v[0] >= v[1]);
    }
}
