//! # counterlab-papi
//!
//! A model of **PAPI** (the Performance API, CVS snapshot of 16 Oct 2007 —
//! the version the paper builds) over the two kernel extensions:
//!
//! * [`lowlevel::PapiLowLevel`] — the “richer and more complex” low-level
//!   API (`PAPI_create_eventset` / `PAPI_add_event` / `PAPI_start` /
//!   `PAPI_read` / `PAPI_accum` / `PAPI_stop`), the paper's `PLpc`/`PLpm`;
//! * [`highlevel::PapiHighLevel`] — the high-level API
//!   (`PAPI_start_counters` / `PAPI_read_counters` / …), the paper's
//!   `PHpc`/`PHpm`, whose `read_counters` **implicitly resets** the
//!   counters and therefore cannot express the read-read or read-stop
//!   access patterns (§3.5);
//! * [`backend::Backend`] — the substrate selection (perfctr or perfmon2),
//!   mirroring the two PAPI builds of §3.3;
//! * [`preset::PapiPreset`] — platform-independent preset events mapped to
//!   native events per micro-architecture.
//!
//! The layering cost is the paper's Figure 6 finding: every PAPI call adds
//! user-mode bookkeeping instructions inside the measurement window, so
//! `direct < low-level < high-level` in error, on both substrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod highlevel;
pub mod lowlevel;
pub mod multiplex;
pub mod preset;

mod error;

pub use backend::{Backend, BackendKind};
pub use error::PapiError;
pub use highlevel::PapiHighLevel;
pub use lowlevel::PapiLowLevel;
pub use multiplex::Multiplexed;
pub use preset::{PapiDomain, PapiPreset};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, PapiError>;
