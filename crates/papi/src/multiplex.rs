//! Counter multiplexing with time interpolation.
//!
//! §9 of the paper cites Mytkowicz et al. (“Time interpolation: so many
//! metrics, so few registers”): when an analyst wants more events than the
//! processor has counter registers, PAPI can *multiplex* — rotate event
//! groups onto the counters and scale each group's counts by the fraction
//! of time it was active:
//!
//! ```text
//! estimate(e) = counted(e) × total_time / active_time(group(e))
//! ```
//!
//! The estimate is exact only if the workload is *stationary*: events
//! accrue uniformly over time. Phase behaviour breaks the assumption, and
//! the error can be arbitrarily large — the accuracy hazard Mytkowicz et
//! al. study and this module reproduces (see
//! `multiplexing_misses_phases` in the tests).

use std::collections::BTreeMap;

use counterlab_cpu::pmu::{CountMode, Event};
use counterlab_kernel::system::System;

use crate::backend::{Backend, BackendKind};
use crate::preset::{PapiDomain, PapiPreset};
use crate::{PapiError, Result};

/// A multiplexed event set: more events than hardware counters, rotated
/// in groups.
///
/// # Examples
///
/// ```
/// use counterlab_papi::multiplex::Multiplexed;
/// use counterlab_papi::{BackendKind, PapiPreset};
/// use counterlab_cpu::prelude::*;
/// use counterlab_kernel::prelude::*;
///
/// # fn main() -> Result<(), counterlab_papi::PapiError> {
/// let sys = System::new(Processor::Core2Duo, KernelConfig::default());
/// // Core 2 has two programmable counters; measure four events anyway.
/// let mut mpx = Multiplexed::new(
///     BackendKind::Perfmon,
///     sys,
///     &[
///         PapiPreset::PAPI_TOT_INS,
///         PapiPreset::PAPI_TOT_CYC,
///         PapiPreset::PAPI_BR_INS,
///         PapiPreset::PAPI_L1_ICM,
///     ],
///     7,
/// )?;
/// assert_eq!(mpx.group_count(), 2);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct Multiplexed {
    backend: Backend,
    domain: PapiDomain,
    groups: Vec<Vec<PapiPreset>>,
    group_idx: usize,
    counted: BTreeMap<PapiPreset, u64>,
    active_tsc: Vec<u64>,
    group_started_tsc: u64,
    total_started_tsc: u64,
    total_tsc: u64,
    running: bool,
}

impl Multiplexed {
    /// Creates a multiplexed set over `events`, split into groups of at
    /// most the processor's programmable-counter count.
    ///
    /// # Errors
    ///
    /// [`PapiError::NoEvents`] for an empty list; substrate attach errors
    /// propagate.
    pub fn new(kind: BackendKind, sys: System, events: &[PapiPreset], seed: u64) -> Result<Self> {
        if events.is_empty() {
            return Err(PapiError::NoEvents);
        }
        let per_group = sys.machine().pmu().programmable_count().max(1);
        let backend = Backend::attach(kind, sys, seed)?;
        let groups: Vec<Vec<PapiPreset>> = events
            .chunks(per_group)
            .map(<[PapiPreset]>::to_vec)
            .collect();
        let active_tsc = vec![0; groups.len()];
        Ok(Multiplexed {
            backend,
            domain: PapiDomain::default(),
            groups,
            group_idx: 0,
            counted: events.iter().map(|e| (*e, 0)).collect(),
            active_tsc,
            group_started_tsc: 0,
            total_started_tsc: 0,
            total_tsc: 0,
            running: false,
        })
    }

    /// Number of rotation groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        self.backend.system()
    }

    /// Mutable system access (to run workload between rotations).
    pub fn system_mut(&mut self) -> &mut System {
        self.backend.system_mut()
    }

    /// Selects the measurement domain.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] while running.
    pub fn set_domain(&mut self, domain: PapiDomain) -> Result<()> {
        if self.running {
            return Err(PapiError::InvalidState {
                operation: "set_domain",
                state: "running",
            });
        }
        self.domain = domain;
        Ok(())
    }

    /// Starts multiplexed counting with the first group active.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] if already running.
    pub fn start(&mut self) -> Result<()> {
        if self.running {
            return Err(PapiError::InvalidState {
                operation: "start",
                state: "running",
            });
        }
        self.group_idx = 0;
        for v in self.counted.values_mut() {
            *v = 0;
        }
        self.active_tsc.iter_mut().for_each(|t| *t = 0);
        self.activate_group()?;
        self.total_started_tsc = self.group_started_tsc;
        self.running = true;
        Ok(())
    }

    /// Rotates to the next group: harvests the active group's counts and
    /// active time, then configures and starts the next group. In real
    /// PAPI the OS timer drives this; here the caller rotates explicitly
    /// between workload slices.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] unless running.
    pub fn rotate(&mut self) -> Result<()> {
        if !self.running {
            return Err(PapiError::InvalidState {
                operation: "rotate",
                state: "stopped",
            });
        }
        self.harvest_group()?;
        self.group_idx = (self.group_idx + 1) % self.groups.len();
        self.activate_group()?;
        Ok(())
    }

    /// Stops counting and finalizes the totals.
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] unless running.
    pub fn stop(&mut self) -> Result<()> {
        if !self.running {
            return Err(PapiError::InvalidState {
                operation: "stop",
                state: "stopped",
            });
        }
        self.harvest_group()?;
        self.total_tsc = self
            .backend
            .system()
            .machine()
            .rdtsc()
            .saturating_sub(self.total_started_tsc);
        self.running = false;
        Ok(())
    }

    /// The raw counted value for an event (only while its group was
    /// active).
    pub fn counted(&self, event: PapiPreset) -> Option<u64> {
        self.counted.get(&event).copied()
    }

    /// The time-interpolated estimates: counted × total / active, per
    /// event. Call after [`Multiplexed::stop`].
    ///
    /// # Errors
    ///
    /// [`PapiError::InvalidState`] while still running.
    pub fn estimates(&self) -> Result<Vec<(PapiPreset, f64)>> {
        if self.running {
            return Err(PapiError::InvalidState {
                operation: "estimates",
                state: "running",
            });
        }
        let mut out = Vec::new();
        for (gi, group) in self.groups.iter().enumerate() {
            let active = self.active_tsc[gi];
            for &event in group {
                let counted = self.counted[&event] as f64;
                let estimate = if active == 0 {
                    0.0
                } else {
                    counted * self.total_tsc as f64 / active as f64
                };
                out.push((event, estimate));
            }
        }
        Ok(out)
    }

    /// The estimate for one event.
    ///
    /// # Errors
    ///
    /// As [`Multiplexed::estimates`].
    pub fn estimate(&self, event: PapiPreset) -> Result<f64> {
        Ok(self
            .estimates()?
            .into_iter()
            .find(|(e, _)| *e == event)
            .map(|(_, v)| v)
            .unwrap_or(0.0))
    }

    fn activate_group(&mut self) -> Result<()> {
        let mode: CountMode = self.domain.to_mode();
        let native: Vec<(Event, CountMode)> = self.groups[self.group_idx]
            .iter()
            .map(|p| (p.to_native(), mode))
            .collect();
        self.backend.configure(&native)?;
        self.backend.start()?;
        self.group_started_tsc = self.backend.system().machine().rdtsc();
        Ok(())
    }

    fn harvest_group(&mut self) -> Result<()> {
        let values = self.backend.read()?;
        self.backend.stop()?;
        let now = self.backend.system().machine().rdtsc();
        self.active_tsc[self.group_idx] += now.saturating_sub(self.group_started_tsc);
        for (event, value) in self.groups[self.group_idx].iter().zip(values) {
            *self.counted.get_mut(event).expect("event registered") += value;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterlab_cpu::layout::CodePlacement;
    use counterlab_cpu::mix::InstMix;
    use counterlab_cpu::uarch::Processor;
    use counterlab_kernel::config::{KernelConfig, SkidModel};

    const FOUR: [PapiPreset; 4] = [
        PapiPreset::PAPI_TOT_INS,
        PapiPreset::PAPI_TOT_CYC,
        PapiPreset::PAPI_BR_INS,
        PapiPreset::PAPI_L1_ICM,
    ];

    fn sys() -> System {
        System::new(
            Processor::Core2Duo,
            KernelConfig::default()
                .with_hz(0)
                .with_skid(SkidModel::disabled()),
        )
    }

    fn mpx() -> Multiplexed {
        Multiplexed::new(BackendKind::Perfmon, sys(), &FOUR, 5).unwrap()
    }

    #[test]
    fn groups_respect_counter_limit() {
        // Core 2 has two counters: four events → two groups.
        let m = mpx();
        assert_eq!(m.group_count(), 2);
        // K8 has four: one group.
        let k8 = System::new(Processor::AthlonK8, KernelConfig::default().with_hz(0));
        let m = Multiplexed::new(BackendKind::Perfmon, k8, &FOUR, 5).unwrap();
        assert_eq!(m.group_count(), 1);
    }

    #[test]
    fn stationary_workload_interpolates_well() {
        let mut m = mpx();
        m.start().unwrap();
        // Uniform workload: the same loop slice between every rotation.
        let placement = CodePlacement::at(0x0804_9000);
        let slices = 8;
        let per_slice = 500_000u64;
        for _ in 0..slices {
            m.system_mut()
                .run_user_loop(&InstMix::LOOP_BODY, per_slice, placement);
            m.rotate().unwrap();
        }
        m.stop().unwrap();
        let total_instructions = 3 * per_slice * slices;
        let est = m.estimate(PapiPreset::PAPI_TOT_INS).unwrap();
        let rel = (est - total_instructions as f64).abs() / total_instructions as f64;
        // Stationary ⇒ interpolation within a few percent.
        assert!(
            rel < 0.05,
            "estimate {est} vs true {total_instructions} (rel {rel})"
        );
        // Raw counted is only about half (each group active half the time).
        let counted = m.counted(PapiPreset::PAPI_TOT_INS).unwrap();
        assert!(counted < total_instructions * 6 / 10, "counted = {counted}");
    }

    #[test]
    fn multiplexing_misses_phases() {
        // Phase behaviour: all branches happen while the branch counter's
        // group is inactive → the estimate is wildly wrong (the Mytkowicz
        // et al. hazard).
        let mut m = mpx();
        m.start().unwrap();
        let placement = CodePlacement::at(0x0804_9000);
        // Phase 1 (group 0 active: TOT_INS/TOT_CYC): branchy loop.
        m.system_mut()
            .run_user_loop(&InstMix::LOOP_BODY, 1_000_000, placement);
        m.rotate().unwrap();
        // Phase 2 (group 1 active: BR_INS/L1_ICM): straight-line code,
        // zero branches.
        m.system_mut()
            .run_user_mix(&InstMix::straight_line(3_000_000));
        m.stop().unwrap();
        let est = m.estimate(PapiPreset::PAPI_BR_INS).unwrap();
        let true_branches = 1_000_000.0;
        // The branch group saw (almost) none of the branchy phase.
        assert!(
            est < 0.2 * true_branches,
            "estimate {est} should grossly undercount {true_branches}"
        );
    }

    #[test]
    fn state_machine_enforced() {
        let mut m = mpx();
        assert!(matches!(m.rotate(), Err(PapiError::InvalidState { .. })));
        assert!(matches!(m.stop(), Err(PapiError::InvalidState { .. })));
        m.start().unwrap();
        assert!(matches!(m.start(), Err(PapiError::InvalidState { .. })));
        assert!(matches!(m.estimates(), Err(PapiError::InvalidState { .. })));
        assert!(matches!(
            m.set_domain(PapiDomain::All),
            Err(PapiError::InvalidState { .. })
        ));
        m.stop().unwrap();
        assert!(m.estimates().is_ok());
    }

    #[test]
    fn empty_events_rejected() {
        assert!(matches!(
            Multiplexed::new(BackendKind::Perfmon, sys(), &[], 1),
            Err(PapiError::NoEvents)
        ));
    }

    #[test]
    fn estimates_cover_every_event() {
        let mut m = mpx();
        m.start().unwrap();
        m.system_mut().run_user_mix(&InstMix::straight_line(10_000));
        m.rotate().unwrap();
        m.system_mut().run_user_mix(&InstMix::straight_line(10_000));
        m.stop().unwrap();
        let est = m.estimates().unwrap();
        assert_eq!(est.len(), 4);
        for (e, v) in est {
            assert!(v >= 0.0, "{e}: {v}");
        }
    }

    #[test]
    fn works_over_perfctr_backend_too() {
        let mut m = Multiplexed::new(BackendKind::Perfctr, sys(), &FOUR, 9).unwrap();
        m.start().unwrap();
        m.system_mut().run_user_mix(&InstMix::straight_line(50_000));
        m.rotate().unwrap();
        m.system_mut().run_user_mix(&InstMix::straight_line(50_000));
        m.stop().unwrap();
        let est = m.estimate(PapiPreset::PAPI_TOT_INS).unwrap();
        assert!(est > 50_000.0, "est = {est}");
    }
}
