use std::error::Error;
use std::fmt;

use counterlab_kernel::KernelError;
use counterlab_perfctr::PerfctrError;
use counterlab_perfmon::PerfmonError;

/// Errors from the PAPI layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PapiError {
    /// Failure in the perfctr substrate.
    Perfctr(PerfctrError),
    /// Failure in the perfmon substrate.
    Perfmon(PerfmonError),
    /// An operation was invalid in the event set's current state.
    InvalidState {
        /// The attempted PAPI call.
        operation: &'static str,
        /// The state it was attempted in.
        state: &'static str,
    },
    /// The same preset was added twice.
    EventAlreadyAdded {
        /// The preset's name.
        name: &'static str,
    },
    /// A start was attempted with no events in the set.
    NoEvents,
    /// A values buffer had the wrong length.
    LengthMismatch {
        /// Events in the set.
        expected: usize,
        /// Buffer length supplied.
        got: usize,
    },
}

impl fmt::Display for PapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PapiError::Perfctr(e) => write!(f, "papi/perfctr: {e}"),
            PapiError::Perfmon(e) => write!(f, "papi/perfmon: {e}"),
            PapiError::InvalidState { operation, state } => {
                write!(f, "papi: {operation} invalid while event set is {state}")
            }
            PapiError::EventAlreadyAdded { name } => {
                write!(f, "papi: event {name} already in the event set")
            }
            PapiError::NoEvents => write!(f, "papi: event set is empty"),
            PapiError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "papi: values buffer has {got} entries, event set has {expected}"
                )
            }
        }
    }
}

impl Error for PapiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PapiError::Perfctr(e) => Some(e),
            PapiError::Perfmon(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PerfctrError> for PapiError {
    fn from(e: PerfctrError) -> Self {
        PapiError::Perfctr(e)
    }
}

impl From<PerfmonError> for PapiError {
    fn from(e: PerfmonError) -> Self {
        PapiError::Perfmon(e)
    }
}

impl From<KernelError> for PapiError {
    fn from(e: KernelError) -> Self {
        PapiError::Perfmon(PerfmonError::Kernel(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PapiError::NoEvents.to_string().contains("empty"));
        assert!(PapiError::InvalidState {
            operation: "PAPI_read",
            state: "stopped"
        }
        .to_string()
        .contains("PAPI_read"));
        let e = PapiError::from(PerfctrError::NotConfigured);
        assert!(Error::source(&e).is_some());
    }
}
