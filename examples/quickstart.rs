//! Quickstart: measure a known workload with PAPI and see the error.
//!
//! The loop benchmark of the paper's Figure 3 executes exactly
//! `1 + 3·iters` instructions. Everything a counter reports beyond that is
//! *measurement error* — the subject of the whole study.
//!
//! Run with `cargo run --example quickstart`.

use counterlab::papi::{BackendKind, PapiHighLevel, PapiPreset};
use counterlab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Boot a simulated Core 2 Duo running the modeled 2.6.22 kernel with
    // the perfctr extension, and initialize PAPI's high-level API over it.
    let mut papi = PapiHighLevel::boot(
        BackendKind::Perfctr,
        Processor::Core2Duo,
        KernelConfig::default(),
        42,
    )?;

    // Count retired instructions.
    papi.start_counters(&[PapiPreset::PAPI_TOT_INS])?;

    // Run the Figure 3 loop benchmark: movl; .loop: addl; cmpl; jne.
    let iters = 1_000_000;
    let placement = CodePlacement::at(0x0804_9000);
    papi.system_mut().run_user_mix(&InstMix::LOOP_PROLOGUE);
    papi.system_mut()
        .run_user_loop(&InstMix::LOOP_BODY, iters, placement);

    // Read the counters (PAPI's high-level read implicitly resets them).
    let mut values = vec![0i64; 1];
    papi.read_counters(&mut values)?;

    let expected = 1 + 3 * iters;
    let measured = values[0] as u64;
    println!("loop iterations: {iters}");
    println!("expected instructions (1 + 3l): {expected}");
    println!("measured instructions:          {measured}");
    println!(
        "measurement error:              {} instructions",
        measured as i64 - expected as i64
    );
    println!();
    println!(
        "The error is the fixed cost of the PAPI_start_counters /\n\
         PAPI_read_counters calls that landed inside the measurement\n\
         window — §4 of the paper quantifies it per infrastructure."
    );
    Ok(())
}
