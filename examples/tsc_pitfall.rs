//! The Figure 4 pitfall: disabling the TSC on perfctr — which *looks* like
//! it should reduce overhead (“one less counter to read”) — actually
//! forces every read through a system call and inflates the error by an
//! order of magnitude.
//!
//! Run with `cargo run --example tsc_pitfall`.

use counterlab::perfctr::{Perfctr, PerfctrOptions};
use counterlab::prelude::*;

fn read_read_error(tsc_on: bool) -> Result<u64, Box<dyn std::error::Error>> {
    let mut pc = Perfctr::boot(
        Processor::Core2Duo,
        KernelConfig::default(),
        PerfctrOptions { tsc_on, seed: 7 },
    )?;
    pc.control(&[(Event::InstructionsRetired, CountMode::UserAndKernel)])?;
    pc.start()?;
    // Null benchmark: two back-to-back reads around *nothing*.
    let c0 = pc.read_ctrs()?.pmcs[0];
    let c1 = pc.read_ctrs()?.pmcs[0];
    Ok(c1 - c0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let with_tsc = read_read_error(true)?;
    let without_tsc = read_read_error(false)?;

    println!("perfctr read-read error on the null benchmark (user+kernel):");
    println!("  TSC enabled  (fast user-mode read): {with_tsc:>6} instructions");
    println!("  TSC disabled (syscall read):        {without_tsc:>6} instructions");
    println!(
        "  penalty for disabling the TSC:      {:>6.1}x",
        without_tsc as f64 / with_tsc as f64
    );
    println!();
    println!(
        "Paper, §4.1: “disabling the TSC actually increases the error …\n\
         when TSC is not used, perfctr cannot use [the fast user-mode]\n\
         approach, and needs to use a slower system-call-based approach.”\n\
         (Their CD medians: 1698 without TSC vs 109.5 with.)"
    );
    Ok(())
}
