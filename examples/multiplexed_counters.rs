//! Counter multiplexing: measuring four events on a processor with two
//! counters — and the time-interpolation hazard that comes with it
//! (Mytkowicz et al., cited in the paper's §9).
//!
//! Run with `cargo run --example multiplexed_counters`.

use counterlab::papi::multiplex::Multiplexed;
use counterlab::papi::{BackendKind, PapiPreset};
use counterlab::prelude::*;

const EVENTS: [PapiPreset; 4] = [
    PapiPreset::PAPI_TOT_INS,
    PapiPreset::PAPI_TOT_CYC,
    PapiPreset::PAPI_BR_INS,
    PapiPreset::PAPI_L1_ICM,
];

fn run_case(stationary: bool) -> Result<(u64, f64), Box<dyn std::error::Error>> {
    let sys = System::new(Processor::Core2Duo, KernelConfig::default());
    let mut mpx = Multiplexed::new(BackendKind::Perfmon, sys, &EVENTS, 11)?;
    mpx.start()?;
    let placement = CodePlacement::at(0x0804_9000);
    let mut true_instructions = 0u64;
    for slice in 0..8 {
        if stationary || slice % 2 == 0 {
            mpx.system_mut()
                .run_user_loop(&InstMix::LOOP_BODY, 250_000, placement);
            true_instructions += 750_000;
        } else {
            mpx.system_mut()
                .run_user_mix(&InstMix::straight_line(2_250_000));
            true_instructions += 2_250_000;
        }
        if slice < 7 {
            mpx.rotate()?;
        }
    }
    mpx.stop()?;
    Ok((true_instructions, mpx.estimate(PapiPreset::PAPI_TOT_INS)?))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Core 2 Duo has 2 programmable counters; measuring {} events\n\
         requires multiplexing: rotate event groups and scale by active\n\
         time. Accuracy depends on the workload being stationary:\n",
        EVENTS.len()
    );
    for (label, stationary) in [("stationary", true), ("phased", false)] {
        let (truth, estimate) = run_case(stationary)?;
        println!(
            "  {label:<11} true instructions {truth:>9}, estimate {estimate:>11.0} \
             (error {:.1}%)",
            100.0 * (estimate - truth as f64).abs() / truth as f64
        );
    }
    println!();
    println!(
        "A phase change that lines up with the rotation schedule makes the\n\
         interpolated estimate wrong by double digits — the “so many\n\
         metrics, so few registers” accuracy problem."
    );
    Ok(())
}
