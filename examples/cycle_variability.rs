//! Section 6's warning, demonstrated: cycle counts for the *same* loop
//! vary by 50%+ across builds, because code placement — not the
//! measurement infrastructure — selects the cycles-per-iteration class.
//!
//! Run with `cargo run --example cycle_variability`.

use counterlab::benchmark::Benchmark;
use counterlab::config::{MeasurementConfig, OptLevel};
use counterlab::interface::{CountingMode, Interface};
use counterlab::measure::{placement_for, run_measurement};
use counterlab::pattern::Pattern;
use counterlab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters = 1_000_000;
    println!(
        "measuring {iters} loop iterations on the Athlon 64 X2 (K8) with\n\
         perfmon, once per (pattern x optimization level) build:\n"
    );
    println!(
        "{:<12} {:>6} {:>14} {:>10} {:>18}",
        "pattern", "opt", "cycles", "cyc/iter", "placement"
    );
    let mut cpis: Vec<f64> = Vec::new();
    for pattern in Pattern::ALL {
        for opt in OptLevel::ALL {
            let cfg = MeasurementConfig::new(Processor::AthlonK8, Interface::Pm)
                .with_pattern(pattern)
                .with_opt_level(opt)
                .with_mode(CountingMode::UserKernel)
                .with_event(Event::CoreCycles);
            let bench = Benchmark::Loop { iters };
            let rec = run_measurement(&cfg, bench)?;
            let cpi = rec.measured as f64 / iters as f64;
            cpis.push(cpi);
            println!(
                "{:<12} {:>6} {:>14} {:>10.3} {:>#18x}",
                pattern.code(),
                opt.flag(),
                rec.measured,
                cpi,
                placement_for(&cfg, &bench).base_address()
            );
        }
    }
    let lo = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = cpis.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "cycles/iteration spread across builds: {lo:.2} .. {hi:.2} ({:.0}%)",
        100.0 * (hi - lo) / lo
    );
    println!();
    println!(
        "Same loop, same processor, same infrastructure — yet the cycle\n\
         count differs by integer factors depending only on where the\n\
         build placed the loop (Figures 11/12). “We caution performance\n\
         analysts to be suspicious of cycle counts … gathered with\n\
         performance counters.”"
    );
    Ok(())
}
