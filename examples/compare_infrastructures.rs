//! Compare the six counter-access interfaces on the null benchmark and
//! print a Table-3-style report with the paper's §8 recommendation.
//!
//! Run with `cargo run --example compare_infrastructures [reps]`.

use counterlab::exec::RunOptions;
use counterlab::experiments::infrastructure;
use counterlab::interface::{CountingMode, Interface};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reps: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(5);

    eprintln!("running the Figure 6 / Table 3 sweep (reps = {reps})...");
    let fig = infrastructure::run_with(reps, &RunOptions::default())?;
    println!("{}", fig.render_table3());
    println!("{}", fig.render_fig6());

    // The paper's guideline (§4.2/§8): perfmon for user-only counts,
    // perfctr for user+kernel counts — no matter whether PAPI is on top.
    let pm_user = fig
        .row(Interface::Pm, CountingMode::User)
        .expect("row exists")
        .median();
    let pc_user = fig
        .row(Interface::Pc, CountingMode::User)
        .expect("row exists")
        .median();
    let pm_uk = fig
        .row(Interface::Pm, CountingMode::UserKernel)
        .expect("row exists")
        .median();
    let pc_uk = fig
        .row(Interface::Pc, CountingMode::UserKernel)
        .expect("row exists")
        .median();

    println!("Recommendation (per the paper's guidelines):");
    println!(
        "  user-only measurements:   use perfmon  (median {pm_user:.0} vs perfctr {pc_user:.0})"
    );
    println!(
        "  user+kernel measurements: use perfctr  (median {pc_uk:.0} vs perfmon {pm_uk:.0}, \
         a {:.0}% reduction)",
        100.0 * (1.0 - pc_uk / pm_uk)
    );
    println!("  and prefer the direct libraries over PAPI when the extra");
    println!("  ~100–200 instructions per call matter for your phase length.");
    Ok(())
}
