//! Null-probe error compensation (the §9 Najafzadeh & Chaiken idea,
//! implemented and evaluated): calibrate the fixed access cost with null
//! probes, subtract it, and see what error remains.
//!
//! Run with `cargo run --example compensated_measurement`.

use counterlab::benchmark::Benchmark;
use counterlab::compensation::Compensator;
use counterlab::config::MeasurementConfig;
use counterlab::interface::{CountingMode, Interface};
use counterlab::measure::run_measurement;
use counterlab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<6} {:>14} {:>12} {:>12} {:>14}",
        "tool", "fixed cost", "raw error", "residual", "improvement"
    );
    for interface in Interface::ALL {
        let cfg = MeasurementConfig::new(Processor::Core2Duo, interface)
            .with_mode(CountingMode::UserKernel)
            .with_hz(0);
        let comp = Compensator::calibrate(&cfg, 20)?;
        let rec = run_measurement(&cfg.with_seed(777), Benchmark::Loop { iters: 10_000 })?;
        let raw = rec.error();
        let residual = comp.residual(&rec);
        println!(
            "{:<6} {:>14.1} {:>12} {:>12} {:>13.0}x",
            interface.code(),
            comp.fixed_cost(),
            raw,
            residual,
            raw as f64 / residual.abs().max(1) as f64
        );
    }
    println!();
    println!(
        "Compensation removes the *fixed* §4 cost almost entirely — but\n\
         only for the exact configuration it was calibrated for, and it\n\
         cannot remove the §5 duration-dependent error:"
    );
    let cfg = MeasurementConfig::new(Processor::Core2Duo, Interface::Pm)
        .with_mode(CountingMode::UserKernel); // timer ON
    let comp = Compensator::calibrate(&cfg, 20)?;
    let long = run_measurement(&cfg, Benchmark::Loop { iters: 50_000_000 })?;
    println!(
        "  50M-iteration loop: raw error {}, residual after compensation {}",
        long.error(),
        comp.residual(&long)
    );
    println!("  (the residual is timer-interrupt attribution — §5's variable error)");
    Ok(())
}
