//! Section 5, demonstrated: the longer a measured region runs, the more
//! timer-interrupt handler instructions get attributed to its user+kernel
//! counts — while user-only counts stay exact.
//!
//! Run with `cargo run --example interrupt_attribution`.

use counterlab::benchmark::Benchmark;
use counterlab::config::MeasurementConfig;
use counterlab::interface::{CountingMode, Interface};
use counterlab::measure::run_measurement;
use counterlab::prelude::*;
use counterlab::stats::regression::LinearFit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [1_000_000u64, 5_000_000, 10_000_000, 20_000_000, 50_000_000];
    let reps = 8;

    println!("perfctr on Core 2 Duo, loop benchmark, averaged over {reps} runs:\n");
    println!(
        "{:>12} {:>14} {:>22} {:>16}",
        "iterations", "expected", "user+kernel error", "user error"
    );

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &iters in &sizes {
        let mut uk_sum = 0i64;
        let mut u_sum = 0i64;
        for rep in 0..reps {
            let seed = 0xA77E ^ iters ^ (rep as u64) << 40;
            let uk = run_measurement(
                &MeasurementConfig::new(Processor::Core2Duo, Interface::Pc)
                    .with_mode(CountingMode::UserKernel)
                    .with_seed(seed),
                Benchmark::Loop { iters },
            )?;
            let u = run_measurement(
                &MeasurementConfig::new(Processor::Core2Duo, Interface::Pc)
                    .with_mode(CountingMode::User)
                    .with_seed(seed),
                Benchmark::Loop { iters },
            )?;
            uk_sum += uk.error();
            u_sum += u.error();
            xs.push(iters as f64);
            ys.push(uk.error() as f64);
        }
        println!(
            "{:>12} {:>14} {:>22.1} {:>16.1}",
            iters,
            1 + 3 * iters,
            uk_sum as f64 / reps as f64,
            u_sum as f64 / reps as f64
        );
    }

    let fit = LinearFit::fit(&xs, &ys)?;
    println!();
    println!(
        "regression: error ≈ {:.1} + {:.6}·iterations  (R² = {:.3})",
        fit.intercept(),
        fit.slope(),
        fit.r_squared()
    );
    println!();
    println!(
        "The slope is the per-iteration error of Figure 7 (paper: ≈0.002\n\
         for perfctr on the Core 2 Duo): timer interrupts run in kernel\n\
         mode and their instructions are attributed to whatever thread\n\
         they preempt. User-only counts are immune — §5's conclusion."
    );
    Ok(())
}
