//! Workspace façade for the `counterlab` reproduction. The root package
//! exists to host the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`); all functionality lives in the member
//! crates, re-exported by [`counterlab`].
pub use counterlab;
