//! Offline stand-in for the subset of the `rand` crate that counterlab
//! uses. The build environment has no registry access, so this workspace
//! member shadows `rand` via a path dependency and provides:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (splitmix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] over the
//!   integer, `usize` and `f64` types the simulator samples.
//!
//! The API mirrors `rand 0.8` exactly for the calls that appear in-tree,
//! so swapping the real crate back in is a one-line manifest change.
//! Distribution quality is adequate for simulation jitter (splitmix64
//! passes BigCrush); it is *not* cryptographic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`: uniform
    /// over the full domain for integers and `bool`, uniform in `[0, 1)`
    /// for floats.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics on an empty range, like `rand` proper.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Full-domain ("standard") sampling for a type.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                // Fast path: spans that fit in u64 (everything except the
                // full inclusive u64 domain) reduce with a 64-bit modulo,
                // which is what the simulator's jitter draws hit on every
                // library call. Identical values to the u128 reduction.
                if let Ok(span64) = u64::try_from(span) {
                    lo.wrapping_add((rng.next_u64() % span64) as $t)
                } else {
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u128;
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
        -> Self {
        assert!(lo < hi || (_inclusive && lo <= hi), "cannot sample empty range {lo}..{hi}");
        let unit = f64::sample_standard(rng);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
        -> Self {
        assert!(lo < hi || (_inclusive && lo <= hi), "cannot sample empty range {lo}..{hi}");
        let unit = f32::sample_standard(rng);
        lo + unit * (hi - lo)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

pub mod rngs {
    //! The concrete generators; only [`StdRng`] is provided.

    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator, the shim's only RNG.
    ///
    /// Seeded from a `u64`; every stream is a pure function of its seed,
    /// which is exactly the property the simulator's reproducibility
    /// tests rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-whiten so that small, correlated seeds (0, 1, 2, ...)
            // land in unrelated parts of the splitmix sequence.
            StdRng {
                state: state ^ 0xD6E8_FEB8_6659_FD93,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0u64..=3);
            assert!(y <= 3);
            let f = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let i = r.gen_range(0..7usize);
            assert!(i < 7);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(0u64..=u64::MAX);
    }
}
