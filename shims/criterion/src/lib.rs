//! Offline stand-in for the subset of the `criterion` benchmark harness
//! that counterlab's `benches/` use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter` and `black_box`.
//!
//! Timing methodology is intentionally simple — geometric ramp-up until a
//! wall-clock floor is reached, then a mean ns/iter over that run —
//! because the numbers only need to be *comparable between commits on the
//! same machine*, not statistically rigorous. `cargo bench` finishes in
//! seconds rather than minutes, and `cargo bench --no-run` (the CI gate)
//! only needs the API surface to compile.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock floor per benchmark; keeps full `cargo bench` runs fast.
const TARGET_PER_BENCH: Duration = Duration::from_millis(60);

/// Harness entry point handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim is time-bounded instead of
    /// sample-count-bounded, so the value is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's floor is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.iters == 0 {
        println!("bench {label:<40} (no iterations recorded)");
    } else {
        println!(
            "bench {label:<40} {:>14.1} ns/iter ({} iters)",
            bencher.ns_per_iter, bencher.iters,
        );
    }
}

/// Passed to the closure given to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, ramping the iteration count geometrically until the
    /// wall-clock floor is met so that very fast routines still get a
    /// stable per-iteration figure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (page-in, lazy init).
        black_box(routine());
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_PER_BENCH || n >= 1 << 24 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            // Jump straight towards the target based on what we observed.
            let observed_ns = elapsed.as_nanos().max(1);
            let needed = (TARGET_PER_BENCH.as_nanos() / observed_ns).max(2) as u64;
            n = n.saturating_mul(needed).min(1 << 24);
        }
    }
}

/// `criterion_group!(name, target_a, target_b, ...)` — the plain form; the
/// `config = ...` form is not used in-tree.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group_a, group_b, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness arguments (e.g. --bench, a
            // filter, --no-run is handled by cargo itself); the shim runs
            // everything and only needs to not choke on them.
            $($group();)+
        }
    };
}
