//! Offline stand-in for the subset of the `proptest` crate that the
//! counterlab test suites use. The build environment has no registry
//! access, so this workspace member shadows `proptest` via a path
//! dependency.
//!
//! Differences from proptest proper, by design:
//!
//! * **No shrinking.** A failing case reports its generating seed and the
//!   concrete argument values instead of a minimized counterexample.
//! * **Deterministic by default.** Each `#[test]` derives its RNG stream
//!   from a hash of its fully-qualified name, so CI runs are reproducible.
//!   Set `PROPTEST_SEED=<u64>` to explore a different stream locally.
//! * **No persistence.** Nothing is written to `proptest-regressions/`;
//!   re-running a failure is done by fixing the reported seed.
//!
//! The macro surface (`proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `any`, `Just`, ranges, tuples, string-pattern and
//! `prop::collection::vec` strategies) matches proptest 1.x for every
//! call that appears in-tree.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of proptest's `prop` re-export module, so that
/// `prop::collection::vec(...)` works after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The usual single-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Entry macro: a block of property tests with an optional
/// `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut seeder = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            // Build each strategy once (a `prop_oneof!` allocates, a string
            // pattern parses); the argument names are then shadowed by the
            // sampled values inside the loop.
            let ($($arg,)+) = ($(($strat),)+);
            while accepted < config.cases {
                let case_seed = seeder.next_u64();
                let mut case_rng = $crate::test_runner::TestRng::from_seed(case_seed);
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut case_rng);)+
                // Rendered before the body runs because the body may move
                // the arguments (e.g. `for op in ops`); the cost is a few
                // ms across the whole workspace suite.
                let rendered_args = format!(
                    concat!($("\n    ", stringify!($arg), " = {:?}",)+),
                    $(&$arg,)+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections ({} accepted, {} rejected; last: {})",
                                accepted, rejected, why,
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  case seed: {:#018x}\n  arguments:{}",
                            msg, case_seed, rendered_args,
                        );
                    }
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                left, right, format!($($fmt)+),
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                left, format!($($fmt)+),
            )));
        }
    }};
}

/// `prop_assume!(cond)`: discard the case (without failing) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// `prop_oneof![a, b, c]`: sample uniformly from one of several strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
