//! `any::<T>()` over the primitive types the suites draw from.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for `T`; returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.bool_value()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes; avoids NaN and
        // infinities, which is what the statistics suites expect of "any"
        // float input they feed into quantile/regression code.
        rng.f64_unit() * 2e9 - 1e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.f64_unit() * 2e9 - 1e9) as f32
    }
}

impl Arbitrary for () {
    fn arbitrary_value(_rng: &mut TestRng) -> Self {}
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (rng.u64_in(0x20, 0x7E) as u8) as char
    }
}
