//! String strategies from regex-like patterns.
//!
//! proptest treats a `&str` as a regex generating matching strings. This
//! shim implements the subset that appears in counterlab's suites —
//! concatenations of literal characters, `.`, and `[a-z0-9_]`-style
//! character classes (with ranges), each optionally quantified by `{m}`,
//! `{m,n}`, `?`, `*` or `+` (unbounded quantifiers capped at 8 repeats).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// Concrete alternatives to pick from.
    Class(Vec<char>),
    /// `.`: any printable ASCII character.
    AnyPrintable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Class(vec![chars[i - 1]])
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier min"),
                            n.trim().parse().expect("bad quantifier max"),
                        ),
                        None => {
                            let m: usize = body.trim().parse().expect("bad quantifier");
                            (m, m)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let reps = rng.usize_in(piece.min, piece.max);
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Class(set) => out.push(set[rng.usize_in(0, set.len() - 1)]),
                    Atom::AnyPrintable => out.push((rng.u64_in(0x20, 0x7E) as u8) as char),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lowercase_class_with_counted_quantifier() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..500 {
            let s = Strategy::sample(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = TestRng::from_seed(5);
        assert_eq!(Strategy::sample(&"abc", &mut rng), "abc");
        assert_eq!(Strategy::sample(&r"a\.b", &mut rng), "a.b");
    }
}
