//! The [`Strategy`] trait and the combinators counterlab's suites use:
//! [`Just`], ranges, tuples, [`Union`] (behind `prop_oneof!`), `prop_map`
//! and `prop_filter`. Generation only — no shrinking trees.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`sample`) plus `Sized`-gated combinators, so that
/// `Box<dyn Strategy<Value = T>>` works for heterogeneous unions.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; gives up after a bounded number
    /// of attempts rather than looping forever on an impossible filter.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive samples", self.whence);
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.options.len() - 1);
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty => $meth:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.$meth(self.start as _, (self.end - 1) as _) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.$meth(*self.start() as _, *self.end() as _) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8 => u64_in, u16 => u64_in, u32 => u64_in, u64 => u64_in, usize => usize_in);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.f64_unit() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                // Include the upper endpoint by drawing over a grid that
                // reaches it exactly (measure-zero nicety, but tests that
                // assert `q <= 1.0` after sampling `0.0..=1.0` rely on the
                // bound being tight in both directions).
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                *self.start() + unit * (*self.end() - *self.start())
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
