//! The runner's configuration, error type and RNG.

/// Mirror of `proptest::test_runner::Config` for the fields counterlab
/// sets. Exposed from the prelude as `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of *accepted* cases each property must pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is discarded.
    Reject(String),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(why: impl Into<String>) -> Self {
        TestCaseError::Reject(why.into())
    }
}

/// Deterministic splitmix64 stream used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for a named `#[test]`: a hash of the fully-qualified test
    /// name, optionally XOR-perturbed by `PROPTEST_SEED` for local
    /// exploration. CI runs (no env var) are therefore fully deterministic.
    pub fn for_test(qualified_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in qualified_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(v) = std::env::var("PROPTEST_SEED") {
            let t = v.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => t.parse::<u64>(),
            };
            // A bad override must not silently fall back to the default
            // stream — the developer would believe they perturbed the run.
            let extra = parsed.unwrap_or_else(|_| {
                panic!("PROPTEST_SEED={v:?} is not a u64 (decimal or 0x-hex)")
            });
            h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        TestRng::from_seed(h)
    }

    pub fn from_seed(state: u64) -> Self {
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive; widened internally so the
    /// full-domain case cannot overflow).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = (hi as u128) - (lo as u128) + 1;
        lo.wrapping_add((self.next_u64() as u128 % span) as u64)
    }

    /// Uniform `usize` in `[lo, hi]` inclusive.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn bool_value(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
